//! Transport-independent request handling: parse a wire line, route it
//! through the cache and worker pool, produce the response line.
//!
//! Keeping this free of sockets means the whole service contract —
//! single-flight, backpressure, error replies, stats — is unit-testable
//! without TCP, and the TCP layer ([`crate::server`]) stays a thin
//! accept-and-shuttle loop.

use crate::cache::{Begin, ResultCache};
use crate::persist::AppendLog;
use crate::pool::WorkerPool;
use crate::protocol::{
    decode, encode, error_code, ErrorReply, IntrospectReport, IntrospectRequest, PerfettoRun,
    PhaseLatency, Request, Response, RunRequest, SpanDump,
};
use crate::stats::{CacheStats, Metrics, PersistStats, StatsReport};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use ugpc_core::{
    run_dynamic_study, run_study_observed, try_run_study, try_run_study_traced, RunConfig,
};
use ugpc_runtime::export::PerfettoSink;
use ugpc_telemetry::{
    json_str, FlightRecorder, HistogramSnapshot, Level, Logger, Phase, RequestSpans, SpanTree,
    TraceCtx,
};

/// The one allocation on a leader's span path: the phase checkpoints
/// travel to the pool worker inside the job box and come back through
/// the flight's completion callback, so both sides share this cell.
type SpanCell = Arc<Mutex<Option<RequestSpans>>>;

/// How the TCP layer serves connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerMode {
    /// Non-blocking event loop: an acceptor thread dispatches
    /// connections across shard threads, each running an epoll-style
    /// readiness loop with request pipelining and batch submission.
    /// The default.
    EventLoop,
    /// The seed thread-per-connection blocking loop, kept as the
    /// differential baseline.
    Blocking,
}

/// Tunables for one service instance.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Simulation worker threads.
    pub workers: usize,
    /// Pending-simulation queue bound (beyond it: backpressure replies).
    pub queue_capacity: usize,
    /// Ready-entry bound of the result cache.
    pub cache_capacity: usize,
    /// Reject configs with more than this many tiles per dimension
    /// (guards the service against graph-building DoS by huge requests).
    pub max_nt: usize,
    /// Cap on `dynamic_iterations`.
    pub max_dynamic_iterations: usize,
    /// Cap on `power_bins` (bounds the size of a traced response).
    pub max_power_bins: usize,
    /// Event-loop shard threads (connections are dispatched across
    /// them; also sizes the per-shard latency histogram sets). Ignored
    /// by the blocking mode, which records into shard 0.
    pub shards: usize,
    /// Requested result-cache shards (clamped by capacity — see
    /// [`ResultCache::with_options`]).
    pub cache_shards: usize,
    /// Largest accepted `Request::Batch` (bigger batches answer every
    /// slot with `bad_request`).
    pub max_batch: usize,
    /// Append-log path for the persistent cache tier. `None` (default)
    /// disables persistence. An unopenable log is a warning, not a
    /// startup failure — the service falls back to memory-only.
    pub persist_path: Option<std::path::PathBuf>,
    /// Which TCP serving architecture [`crate::Server`] runs.
    pub mode: ServerMode,
    /// Attach the in-memory flight recorder (request span rings +
    /// per-phase histograms, served by `Request::Introspect`). On by
    /// default; turning it off is the differential-test axis proving
    /// the recorder never changes a reply byte.
    pub recorder: bool,
    /// Span-ring capacity per event-loop shard (newest wins on wrap).
    pub recorder_capacity: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        ServeOptions {
            workers: cores,
            queue_capacity: 64,
            cache_capacity: 256,
            max_nt: 64,
            max_dynamic_iterations: 200,
            max_power_bins: 4096,
            shards: cores.min(8),
            cache_shards: 8,
            max_batch: 64,
            persist_path: None,
            mode: ServerMode::EventLoop,
            recorder: true,
            recorder_capacity: 256,
        }
    }
}

/// The shared state behind every connection.
pub struct Service {
    pub(crate) cache: Arc<ResultCache>,
    pub(crate) pool: WorkerPool,
    pub(crate) metrics: Metrics,
    pub(crate) logger: Arc<Logger>,
    /// Simulations actually run, counted *before* the result publishes —
    /// so a leader observing its own reply already sees the increment
    /// (unlike the pool's job counter, which lags the flight).
    simulations: Arc<AtomicU64>,
    /// Per-shard span rings + phase histograms; `None` when
    /// `ServeOptions::recorder` is off (or under the blocking server,
    /// which never records spans).
    recorder: Option<Arc<FlightRecorder>>,
    options: ServeOptions,
    shutdown: AtomicBool,
}

impl Service {
    /// A service logging to stderr, filtered by `UGPC_LOG`.
    pub fn new(options: ServeOptions) -> Arc<Self> {
        Self::with_logger(options, Logger::from_env())
    }

    /// A service with an explicit logger — tests capture the exact log
    /// bytes with [`Logger::to_buffer`].
    pub fn with_logger(options: ServeOptions, logger: Arc<Logger>) -> Arc<Self> {
        let persist =
            options
                .persist_path
                .as_deref()
                .and_then(|path| match AppendLog::open(path) {
                    Ok(log) => {
                        if log.recovered_count() > 0 || log.truncated_bytes() > 0 {
                            logger.info(
                                "cache log recovered",
                                None,
                                &[
                                    ("records", log.recovered_count().to_string()),
                                    ("bytes", log.bytes().to_string()),
                                    ("truncated_bytes", log.truncated_bytes().to_string()),
                                ],
                            );
                        }
                        Some(log)
                    }
                    Err(e) => {
                        logger.warn(
                            "cache log unavailable, serving memory-only",
                            None,
                            &[("error", json_str(&e.to_string()))],
                        );
                        None
                    }
                });
        Arc::new(Service {
            cache: ResultCache::with_options(options.cache_capacity, options.cache_shards, persist),
            pool: WorkerPool::new_with_logger(
                options.workers,
                options.queue_capacity,
                logger.clone(),
            ),
            metrics: Metrics::new(options.shards.max(1)),
            logger,
            simulations: Arc::new(AtomicU64::new(0)),
            recorder: options.recorder.then(|| {
                FlightRecorder::new(options.shards.max(1), options.recorder_capacity.max(1))
            }),
            options,
            shutdown: AtomicBool::new(false),
        })
    }

    pub fn options(&self) -> &ServeOptions {
        &self.options
    }

    /// The attached flight recorder, if any (the event loop threads it
    /// through request handling; `Introspect` drains it).
    pub fn recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.recorder.as_ref()
    }

    /// Set once a `Shutdown` request is seen; the accept loop polls it.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Decode one wire line, counting it and producing the parse-error
    /// reply line on failure. One increment of `requests_total` per wire
    /// line, batch or not — both transports route through here.
    pub(crate) fn decode_line(&self, line: &str) -> Result<Request, String> {
        self.metrics.requests_total.inc();
        decode::<Request>(line.trim()).map_err(|e| {
            self.metrics.parse_errors.inc();
            self.logger.warn("unparseable request line", None, &[]);
            encode(&Response::Error(ErrorReply::new(
                error_code::BAD_REQUEST,
                format!("unparseable request: {e}"),
            )))
        })
    }

    /// Handle one wire line, returning the response line (without the
    /// trailing newline). Never panics on malformed input. Single-reply
    /// entry point: a `Batch` line needs [`Service::handle_line_multi`]
    /// and is answered here with a structured error.
    pub fn handle_line(self: &Arc<Self>, line: &str) -> String {
        match self.decode_line(line) {
            Err(error_line) => error_line,
            Ok(Request::Batch(_)) => encode(&Response::Error(ErrorReply::new(
                error_code::BAD_REQUEST,
                "batch requests need a batch-aware transport entry point",
            ))),
            Ok(request) => self.handle_request(request),
        }
    }

    /// Handle one wire line that may be a `Batch`: returns one reply
    /// line per reply slot, in order (a batch of N yields N lines; an
    /// empty batch yields zero; everything else yields one). The
    /// blocking transport's entry point.
    pub fn handle_line_multi(self: &Arc<Self>, line: &str) -> Vec<String> {
        match self.decode_line(line) {
            Err(error_line) => vec![error_line],
            Ok(Request::Batch(runs)) => match self.admit_batch(&runs) {
                Err(error_line) => runs.iter().map(|_| error_line.clone()).collect(),
                Ok(()) => runs
                    .into_iter()
                    .map(|run| self.handle_request(Request::Run(run)))
                    .collect(),
            },
            Ok(request) => vec![self.handle_request(request)],
        }
    }

    /// Batch admission: every slot of an over-sized batch gets the same
    /// error line so the client's reply count matches its request count.
    pub(crate) fn admit_batch(&self, runs: &[RunRequest]) -> Result<(), String> {
        if runs.len() > self.options.max_batch {
            return Err(encode(&Response::Error(ErrorReply::new(
                error_code::BAD_REQUEST,
                format!(
                    "batch of {} exceeds this service's limit of {}",
                    runs.len(),
                    self.options.max_batch
                ),
            ))));
        }
        Ok(())
    }

    /// Dispatch one decoded request synchronously (blocking transport
    /// and unit tests).
    pub(crate) fn handle_request(self: &Arc<Self>, request: Request) -> String {
        match request {
            Request::Ping => encode(&Response::Pong),
            Request::Stats => {
                let t0 = Instant::now();
                let report = self.stats_report();
                let line = encode(&Response::Stats(report));
                self.metrics.stats_op.record(t0.elapsed());
                line
            }
            Request::Metrics => {
                let t0 = Instant::now();
                let line = encode(&Response::Metrics(self.render_metrics()));
                self.metrics.stats_op.record(t0.elapsed());
                line
            }
            Request::Introspect(req) => {
                let t0 = Instant::now();
                let line = encode(&Response::Introspect(self.introspect_report(&req)));
                self.metrics.stats_op.record(t0.elapsed());
                line
            }
            Request::ClearCache => {
                self.cache.clear();
                encode(&Response::CacheCleared)
            }
            Request::Shutdown => {
                self.logger.info("shutdown requested", None, &[]);
                self.request_shutdown();
                encode(&Response::ShuttingDown)
            }
            Request::Run(mut run) => {
                let ctx = self.resolve_and_log(&mut run);
                self.handle_run(&run, ctx)
            }
            // Unreachable through the public entry points (both split
            // batches before dispatch); degrade to a structured reply.
            Request::Batch(_) => encode(&Response::Error(ErrorReply::new(
                error_code::BAD_REQUEST,
                "nested batch",
            ))),
        }
    }

    /// Resolve the trace context once (adopt the client's or mint one)
    /// and pin it on the request, so the perfetto cache key and every
    /// log line see the same ids.
    fn resolve_and_log(&self, run: &mut RunRequest) -> TraceCtx {
        let ctx = TraceCtx::adopt(run.trace);
        run.trace = Some(ctx);
        // Building the field strings costs four allocations — skip it
        // entirely when info logging is off (the bench servers' hot path).
        if self.logger.enabled(Level::Info) {
            self.logger.info(
                "run request",
                Some(ctx),
                &[
                    ("op", json_str(run.config.op.name())),
                    ("platform", json_str(run.config.platform.name())),
                    ("n", run.config.n.to_string()),
                    ("perfetto", run.wants_perfetto().to_string()),
                ],
            );
        }
        ctx
    }

    /// Fill the scrape-time gauges and render the Prometheus text
    /// exposition of every registered instrument.
    pub fn render_metrics(&self) -> String {
        let m = &self.metrics;
        m.gauge_uptime_s.set(m.uptime().as_secs_f64());
        m.gauge_open_connections
            .set(*m.open_connections.lock() as f64);
        m.gauge_queue_depth.set(self.pool.queue_depth() as f64);
        m.gauge_queue_capacity
            .set(self.pool.queue_capacity() as f64);
        m.gauge_workers.set(self.pool.workers() as f64);
        let c = self.cache.counters_snapshot();
        m.gauge_cache_entries.set(self.cache.len() as f64);
        m.gauge_cache_capacity.set(self.cache.capacity() as f64);
        m.gauge_cache_hits.set(c.hits as f64);
        m.gauge_cache_misses.set(c.misses as f64);
        m.gauge_cache_coalesced.set(c.coalesced as f64);
        m.gauge_cache_evictions.set(c.evictions as f64);
        m.gauge_cache_hit_rate.set(self.cache.hit_rate());
        let (inbox, backlog) = m.depth_totals();
        m.gauge_inbox_depth.set(inbox as f64);
        m.gauge_write_backlog_bytes.set(backlog as f64);
        if let Some(p) = self.cache.persist_stats() {
            m.gauge_persist_log_bytes.set(p.bytes as f64);
            m.gauge_persist_log_records
                .set((p.recovered + p.appended) as f64);
            m.gauge_persist_recovered_records.set(p.recovered as f64);
            m.gauge_persist_truncated_bytes
                .set(p.truncated_bytes as f64);
        }
        m.registry().render()
    }

    /// Drain the flight recorder into the wire report: the last-N and
    /// worst-K span trees plus the uptime-wide per-phase decomposition.
    /// An absent recorder answers `enabled: false` rather than erroring
    /// so ops tooling can probe unconditionally.
    pub fn introspect_report(&self, req: &IntrospectRequest) -> IntrospectReport {
        let Some(rec) = &self.recorder else {
            return IntrospectReport {
                enabled: false,
                recorded: 0,
                spans: Vec::new(),
                worst: Vec::new(),
                phases: Vec::new(),
                total: None,
            };
        };
        let trees = rec.drain();
        let last = req.last.unwrap_or(16);
        let spans: Vec<SpanDump> = trees.iter().rev().take(last).rev().map(dump_tree).collect();
        let mut by_total: Vec<&SpanTree> = trees.iter().collect();
        by_total.sort_by_key(|t| std::cmp::Reverse(t.total_us()));
        let worst: Vec<SpanDump> = by_total
            .iter()
            .take(req.worst.unwrap_or(8))
            .map(|t| dump_tree(t))
            .collect();
        let phases = rec
            .phase_snapshots()
            .iter()
            .map(|(p, snap)| phase_latency(p.name(), snap))
            .collect();
        IntrospectReport {
            enabled: true,
            recorded: rec.recorded(),
            spans,
            worst,
            phases,
            total: Some(phase_latency("total", &rec.total_snapshot())),
        }
    }

    /// Checkpoint `phase` on the request's spans, if both the recorder
    /// and the spans exist (they are attached together by the event
    /// loop; both are absent on the blocking path).
    pub(crate) fn mark_phase(&self, spans: &mut Option<RequestSpans>, phase: Phase) {
        if let (Some(rec), Some(s)) = (&self.recorder, spans.as_mut()) {
            s.mark(phase, rec.now_us());
        }
    }

    /// The run path: validate, consult the cache (single-flight), and on
    /// a miss simulate on the worker pool — or bounce with backpressure.
    fn handle_run(self: &Arc<Self>, run: &RunRequest, ctx: TraceCtx) -> String {
        let t0 = Instant::now();
        let cfg = match self.validate_run(run) {
            Ok(cfg) => cfg,
            Err(reply) => {
                self.metrics.invalid_configs.inc();
                self.logger.warn(
                    "run rejected",
                    Some(ctx),
                    &[("reason", json_str(&reply.message))],
                );
                return encode(&Response::Error(reply));
            }
        };
        match self.cache.begin(run.cache_key_with(&cfg)) {
            Begin::Hit(line) => {
                self.metrics.run_hit.record(t0.elapsed());
                self.logger.debug("cache hit", Some(ctx), &[]);
                line.to_string()
            }
            Begin::Wait(flight) => {
                self.logger
                    .debug("coalesced behind in-flight run", Some(ctx), &[]);
                let out = render_flight(ResultCache::wait(&flight));
                self.metrics.run_wait.record(t0.elapsed());
                out
            }
            Begin::Lead(guard) => {
                // The leader observes its own flight directly — the
                // guard exposes it — so no re-registration (and no
                // coalesced-counter bookkeeping) is needed.
                let flight = guard.flight();
                self.logger
                    .debug("cache miss, leading simulation", Some(ctx), &[]);
                if let Some(reply) = self.lead_simulation(run, ctx, guard, None) {
                    return reply; // backpressure: flight already failed
                }
                let out = render_flight(ResultCache::wait(&flight));
                self.metrics.run_miss.record(t0.elapsed());
                out
            }
        }
    }

    /// Submit the leader's simulation job to the pool. Returns
    /// `Some(reply)` on rejection (the flight is failed by dropping the
    /// job box, so concurrent waiters see a clean error); `None` once
    /// the job is queued and the caller should await the flight.
    fn lead_simulation(
        self: &Arc<Self>,
        run: &RunRequest,
        ctx: TraceCtx,
        guard: crate::cache::LeadGuard,
        spans_cell: Option<SpanCell>,
    ) -> Option<String> {
        let job_run = run.clone();
        let sims = self.simulations.clone();
        let sims_metric = self.metrics.simulations.clone();
        let rec = self.recorder.clone();
        let submitted = self.pool.try_submit_traced(
            Box::new(move || {
                // The gap since the leader's CacheLookup mark is time
                // spent queued behind other jobs.
                mark_cell(&rec, &spans_cell, Phase::QueueWait);
                let response = simulate_response(&job_run);
                mark_cell(&rec, &spans_cell, Phase::Simulate);
                sims.fetch_add(1, Ordering::SeqCst);
                sims_metric.inc();
                let line = encode(&response);
                mark_cell(&rec, &spans_cell, Phase::Serialize);
                // `fulfill` runs the subscribed completion callbacks
                // synchronously, so every Serialize mark above is
                // visible before the leader's callback takes the cell.
                guard.fulfill(line.into());
            }),
            Some(ctx),
        );
        if let Err(rejected) = submitted {
            self.metrics.backpressure_rejections.inc();
            self.logger.warn("backpressure", Some(ctx), &[]);
            // Fail the flight so concurrent waiters see a clean error
            // (the job box still owns the guard; dropping it resolves
            // the flight).
            drop(rejected);
            return Some(encode(&Response::Error(ErrorReply::backpressure(
                self.pool.retry_after_ms(),
                self.pool.queue_depth(),
            ))));
        }
        None
    }

    /// The event-loop run path: same validation/cache/pool protocol as
    /// [`Service::handle_run`], but instead of blocking on an in-flight
    /// simulation it subscribes a completion callback. Returns
    /// `Some((reply, spans))` when the answer is available immediately
    /// (validation error, cache hit, backpressure); `None` when
    /// `complete` will be invoked exactly once with the reply line and
    /// the request's spans, from whichever thread resolves the flight —
    /// the event loop routes both back to the owning shard, which alone
    /// writes its span ring. Latency is recorded into the shard-`shard`
    /// histogram set *before* the reply is surfaced on every path, so a
    /// client that observes its reply then asks for `Stats` sees the
    /// sample.
    pub fn handle_run_async<F>(
        self: &Arc<Self>,
        mut run: RunRequest,
        shard: usize,
        mut spans: Option<RequestSpans>,
        complete: F,
    ) -> Option<(Arc<str>, Option<RequestSpans>)>
    where
        F: FnOnce(Arc<str>, Option<RequestSpans>) + Send + 'static,
    {
        let t0 = Instant::now();
        let ctx = self.resolve_and_log(&mut run);
        if let Some(s) = spans.as_mut() {
            s.set_trace(ctx);
        }
        let lat = self.metrics.latency_shard(shard);
        let cfg = match self.validate_run(&run) {
            Ok(cfg) => cfg,
            Err(reply) => {
                self.metrics.invalid_configs.inc();
                self.logger.warn(
                    "run rejected",
                    Some(ctx),
                    &[("reason", json_str(&reply.message))],
                );
                return Some((encode(&Response::Error(reply)).into(), spans));
            }
        };
        let begun = self.cache.begin(run.cache_key_with(&cfg));
        self.mark_phase(&mut spans, Phase::CacheLookup);
        match begun {
            Begin::Hit(line) => {
                lat.run_hit.record(t0.elapsed());
                self.logger.debug("cache hit", Some(ctx), &[]);
                Some((line, spans))
            }
            Begin::Wait(flight) => {
                self.logger
                    .debug("coalesced behind in-flight run", Some(ctx), &[]);
                let hist = lat.run_wait.clone();
                let rec = self.recorder.clone();
                ResultCache::subscribe(
                    &flight,
                    Box::new(move |res| {
                        hist.record(t0.elapsed());
                        let mut spans = spans;
                        if let (Some(rec), Some(s)) = (&rec, spans.as_mut()) {
                            s.mark(Phase::FlightWait, rec.now_us());
                        }
                        complete(render_flight_arc(res), spans);
                    }),
                );
                None
            }
            Begin::Lead(guard) => {
                let flight = guard.flight();
                self.logger
                    .debug("cache miss, leading simulation", Some(ctx), &[]);
                let cell: Option<SpanCell> = spans.map(|s| Arc::new(Mutex::new(Some(s))));
                if let Some(reply) = self.lead_simulation(&run, ctx, guard, cell.clone()) {
                    // Backpressure: the rejected job box (and its cell
                    // clone) was dropped, so the spans come straight
                    // back out for the shard to journal the rejection.
                    let spans = cell.and_then(|c| c.lock().take());
                    return Some((reply.into(), spans));
                }
                let hist = lat.run_miss.clone();
                ResultCache::subscribe(
                    &flight,
                    Box::new(move |res| {
                        hist.record(t0.elapsed());
                        // Runs inside `fulfill`, after the worker's
                        // Serialize mark — the take sees every phase.
                        let spans = cell.and_then(|c| c.lock().take());
                        complete(render_flight_arc(res), spans);
                    }),
                );
                None
            }
        }
    }

    /// Whether the event loop may serve repeated byte-identical request
    /// lines through the request-identity memo (skipping the parse /
    /// validate / trace-mint sequence). Allowed only when info logging
    /// is off: the memo path emits no per-request "run request" line, so
    /// it must not engage while anyone is watching the logs. Correctness
    /// does not depend on this gate — identical bytes parse to an
    /// identical request, whose content-addressed key can only hit an
    /// entry produced by a fully validated identical run.
    pub(crate) fn memo_allowed(&self) -> bool {
        !self.logger.enabled(Level::Info)
    }

    /// The request-identity fast path: count the wire line and probe the
    /// cache for `key`. On a hit the reply, hit counter, and shard
    /// latency sample are all recorded exactly as on the parsed hit
    /// path. On a miss nothing is counted — the caller falls back to the
    /// full path, which counts the line itself.
    pub(crate) fn fast_run_hit(&self, key: ugpc_core::CacheKey, shard: usize) -> Option<Arc<str>> {
        let t0 = Instant::now();
        let line = self.cache.probe(key)?;
        self.metrics.requests_total.inc();
        self.metrics
            .latency_shard(shard)
            .run_hit
            .record(t0.elapsed());
        Some(line)
    }

    /// Service-level admission checks on top of `RunConfig::validate`.
    /// Returns the effective config on success so the run paths can key
    /// the cache without recomputing it.
    fn validate_run(&self, run: &RunRequest) -> Result<RunConfig, ErrorReply> {
        let cfg = run.effective_config();
        cfg.validate()
            .map_err(|e| ErrorReply::new(error_code::INVALID_CONFIG, e.to_string()))?;
        if cfg.nt() > self.options.max_nt {
            return Err(ErrorReply::new(
                error_code::INVALID_CONFIG,
                format!(
                    "nt = {} exceeds this service's limit of {}",
                    cfg.nt(),
                    self.options.max_nt
                ),
            ));
        }
        match run.dynamic_iterations {
            Some(0) => {
                return Err(ErrorReply::new(
                    error_code::INVALID_CONFIG,
                    "dynamic_iterations must be >= 1",
                ))
            }
            Some(k) if k > self.options.max_dynamic_iterations => {
                return Err(ErrorReply::new(
                    error_code::INVALID_CONFIG,
                    format!(
                        "dynamic_iterations = {k} exceeds this service's limit of {}",
                        self.options.max_dynamic_iterations
                    ),
                ))
            }
            _ => {}
        }
        match run.power_bins {
            Some(0) => {
                return Err(ErrorReply::new(
                    error_code::INVALID_CONFIG,
                    "power_bins must be >= 1",
                ))
            }
            Some(b) if b > self.options.max_power_bins => {
                return Err(ErrorReply::new(
                    error_code::INVALID_CONFIG,
                    format!(
                        "power_bins = {b} exceeds this service's limit of {}",
                        self.options.max_power_bins
                    ),
                ))
            }
            Some(_) if run.dynamic_iterations.is_some() => {
                return Err(ErrorReply::new(
                    error_code::INVALID_CONFIG,
                    "power_bins and dynamic_iterations are mutually exclusive",
                ))
            }
            _ => {}
        }
        if run.wants_perfetto() && (run.dynamic_iterations.is_some() || run.power_bins.is_some()) {
            return Err(ErrorReply::new(
                error_code::INVALID_CONFIG,
                "perfetto is mutually exclusive with dynamic_iterations and power_bins",
            ));
        }
        if let Some(spec) = &run.controller {
            if run.dynamic_iterations.is_some() || run.power_bins.is_some() || run.wants_perfetto()
            {
                return Err(ErrorReply::new(
                    error_code::INVALID_CONFIG,
                    "controller is mutually exclusive with dynamic_iterations, power_bins, and perfetto",
                ));
            }
            spec.validate()
                .map_err(|e| ErrorReply::new(error_code::INVALID_CONFIG, e))?;
        }
        Ok(cfg)
    }

    pub fn stats_report(&self) -> StatsReport {
        let c = self.cache.counters_snapshot();
        StatsReport {
            uptime_s: self.metrics.uptime().as_secs_f64(),
            workers: self.pool.workers(),
            queue_depth: self.pool.queue_depth(),
            queue_capacity: self.pool.queue_capacity(),
            open_connections: *self.metrics.open_connections.lock(),
            requests_total: self.metrics.requests_total.get(),
            parse_errors: self.metrics.parse_errors.get(),
            invalid_configs: self.metrics.invalid_configs.get(),
            backpressure_rejections: self.metrics.backpressure_rejections.get(),
            simulations_executed: self.simulations.load(Ordering::SeqCst),
            cache: CacheStats {
                entries: self.cache.len(),
                capacity: self.cache.capacity(),
                hits: c.hits,
                misses: c.misses,
                coalesced: c.coalesced,
                evictions: c.evictions,
                hit_rate: self.cache.hit_rate(),
            },
            latency: self.metrics.latency_report(),
            persist: self.cache.persist_stats().map(|p| PersistStats {
                path: p.path,
                recovered: p.recovered,
                appended: p.appended,
                bytes: p.bytes,
                truncated_bytes: Some(p.truncated_bytes),
                errors: p.errors,
            }),
        }
    }
}

/// Checkpoint `phase` on the spans travelling inside a leader's cell
/// (no-ops without a recorder or without spans — the blocking path and
/// recorder-off servers pay one `None` check).
fn mark_cell(rec: &Option<Arc<FlightRecorder>>, cell: &Option<SpanCell>, phase: Phase) {
    if let (Some(rec), Some(cell)) = (rec, cell) {
        if let Some(s) = cell.lock().as_mut() {
            s.mark(phase, rec.now_us());
        }
    }
}

/// Project one decoded span tree into its wire form.
fn dump_tree(t: &SpanTree) -> SpanDump {
    SpanDump {
        trace: t.trace_hex(),
        shard: u64::from(t.shard),
        start_us: t.start_us,
        total_us: t.total_us(),
        phases: t
            .phases
            .iter()
            .map(|&(p, us)| (p.name().to_string(), us))
            .collect(),
    }
}

/// Project a phase histogram snapshot into its wire form.
fn phase_latency(phase: &str, snap: &HistogramSnapshot) -> PhaseLatency {
    PhaseLatency {
        phase: phase.to_string(),
        count: snap.count,
        mean_us: snap.mean_us(),
        max_us: snap.max_us,
        p50_us: snap.quantile_upper_us(0.5),
        p99_us: snap.quantile_upper_us(0.99),
    }
}

/// Render a resolved flight into the reply line (errors become the same
/// structured `internal` reply the blocking path produces).
fn render_flight(res: Result<Arc<str>, String>) -> String {
    render_flight_arc(res).to_string()
}

/// [`render_flight`] without the copy — the async paths hand the cached
/// line onward by reference count.
fn render_flight_arc(res: Result<Arc<str>, String>) -> Arc<str> {
    match res {
        Ok(line) => line,
        Err(msg) => encode(&Response::Error(ErrorReply::new(error_code::INTERNAL, msg))).into(),
    }
}

/// Execute a validated run request — the only place the service touches
/// the simulator. Runs on a pool worker.
fn simulate_response(run: &RunRequest) -> Response {
    let cfg = run.effective_config();
    if run.wants_perfetto() {
        // Validated: perfetto excludes dynamic/traced modes. The trace
        // context was resolved by the service before keying; adopt()
        // here only covers direct calls in tests.
        if let Err(e) = cfg.validate() {
            return Response::Error(ErrorReply::new(error_code::INVALID_CONFIG, e.to_string()));
        }
        let ctx = TraceCtx::adopt(run.trace);
        let mut sink = PerfettoSink::new();
        sink.set_trace_ids(&ctx.trace_hex(), &ctx.span_hex());
        let report = run_study_observed(&cfg, &mut [&mut sink]);
        return Response::Perfetto(PerfettoRun {
            report,
            trace_id: ctx.trace_hex(),
            span_id: ctx.span_hex(),
            trace_json: sink.into_json(),
        });
    }
    if let Some(spec) = &run.controller {
        // Validated: excludes dynamic/traced/perfetto modes.
        return match ugpc_core::try_run_study_controlled(&cfg, spec) {
            Ok(controlled) => Response::Controlled(controlled),
            Err(e) => Response::Error(ErrorReply::new(error_code::INVALID_CONFIG, e.to_string())),
        };
    }
    match (run.dynamic_iterations, run.power_bins) {
        (None, Some(bins)) => match try_run_study_traced(&cfg, bins) {
            Ok(traced) => Response::Traced(traced),
            Err(e) => Response::Error(ErrorReply::new(error_code::INVALID_CONFIG, e.to_string())),
        },
        (None, None) => match try_run_study(&cfg) {
            Ok(report) => Response::Run(report),
            Err(e) => Response::Error(ErrorReply::new(error_code::INVALID_CONFIG, e.to_string())),
        },
        // Validated: k >= 1 and the config passed `validate()`, so the
        // study's internal `expect`s hold (power_bins is rejected in
        // combination with dynamic runs before reaching here).
        (Some(k), _) => Response::Dynamic(run_dynamic_study(&cfg, k)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::decode;
    use ugpc_core::RunConfig;
    use ugpc_hwsim::{OpKind, PlatformId, Precision};

    fn tiny() -> RunConfig {
        RunConfig::paper(PlatformId::Amd4A100, OpKind::Gemm, Precision::Double).scaled_down(8)
    }

    fn small_service() -> Arc<Service> {
        Service::with_logger(
            ServeOptions {
                workers: 2,
                queue_capacity: 8,
                cache_capacity: 8,
                ..ServeOptions::default()
            },
            Logger::disabled(),
        )
    }

    #[test]
    fn run_then_hit_skips_simulation() {
        let svc = small_service();
        let req = encode(&Request::Run(RunRequest::new(tiny())));
        let first = svc.handle_line(&req);
        let second = svc.handle_line(&req);
        assert_eq!(first, second, "cache hit must be byte-identical");
        assert!(matches!(
            decode::<Response>(&first).expect("decode"),
            Response::Run(_)
        ));
        let stats = svc.stats_report();
        assert_eq!(stats.cache.misses, 1);
        assert_eq!(stats.cache.hits, 1);
        assert_eq!(stats.simulations_executed, 1, "hit skipped the pool");
    }

    #[test]
    fn malformed_line_gets_error_reply() {
        let svc = small_service();
        for bad in ["", "garbage", "{\"Run\": 1}", "{\"Run\": {\"config\": {}}}"] {
            let out = svc.handle_line(bad);
            match decode::<Response>(&out).expect("decode") {
                Response::Error(e) => assert_eq!(e.code, error_code::BAD_REQUEST, "{bad}"),
                other => panic!("expected error for {bad:?}, got {other:?}"),
            }
        }
        assert_eq!(svc.stats_report().parse_errors, 4);
    }

    #[test]
    fn invalid_config_is_rejected_not_simulated() {
        let svc = small_service();
        // 2-GPU cap config on the 4-GPU platform.
        let mut cfg = tiny();
        cfg.gpu_config = ugpc_capping::CapConfig::uniform(ugpc_capping::CapLevel::B, 2);
        let out = svc.handle_line(&encode(&Request::Run(RunRequest::new(cfg))));
        match decode::<Response>(&out).expect("decode") {
            Response::Error(e) => assert_eq!(e.code, error_code::INVALID_CONFIG),
            other => panic!("{other:?}"),
        }
        // Over-sized problems bounce on the nt guard.
        let mut big = tiny();
        big.n = big.nb * (svc.options().max_nt + 1);
        let out = svc.handle_line(&encode(&Request::Run(RunRequest::new(big))));
        match decode::<Response>(&out).expect("decode") {
            Response::Error(e) => assert_eq!(e.code, error_code::INVALID_CONFIG),
            other => panic!("{other:?}"),
        }
        assert_eq!(svc.stats_report().simulations_executed, 0);
    }

    #[test]
    fn dynamic_study_served_and_cached() {
        let svc = small_service();
        let mut req = RunRequest::new(tiny());
        req.dynamic_iterations = Some(2);
        let line = encode(&Request::Run(req));
        let first = svc.handle_line(&line);
        match decode::<Response>(&first).expect("decode") {
            Response::Dynamic(d) => assert_eq!(d.iterations.len(), 2),
            other => panic!("{other:?}"),
        }
        let second = svc.handle_line(&line);
        assert_eq!(first, second);
        assert_eq!(svc.stats_report().simulations_executed, 1);
    }

    #[test]
    fn traced_run_served_cached_and_validated() {
        let svc = small_service();
        let mut req = RunRequest::new(tiny());
        req.power_bins = Some(16);
        let line = encode(&Request::Run(req.clone()));
        let first = svc.handle_line(&line);
        match decode::<Response>(&first).expect("decode") {
            Response::Traced(t) => {
                assert!(t.report.makespan_s > 0.0);
                assert!(t.power.avg_w.iter().all(|l| l.len() == 16));
                assert_eq!(t.power.lanes.len(), 5, "4 GPUs + 1 package");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(svc.handle_line(&line), first, "traced hits byte-identical");
        assert_eq!(svc.stats_report().simulations_executed, 1);
        // Limits: zero bins, oversized bins, and combining with a
        // dynamic study are all rejected before simulation.
        for bad in [
            {
                let mut r = req.clone();
                r.power_bins = Some(0);
                r
            },
            {
                let mut r = req.clone();
                r.power_bins = Some(svc.options().max_power_bins + 1);
                r
            },
            {
                let mut r = req.clone();
                r.dynamic_iterations = Some(2);
                r
            },
        ] {
            let out = svc.handle_line(&encode(&Request::Run(bad)));
            match decode::<Response>(&out).expect("decode") {
                Response::Error(e) => assert_eq!(e.code, error_code::INVALID_CONFIG),
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(svc.stats_report().simulations_executed, 1);
    }

    #[test]
    fn metrics_exposition_agrees_with_stats() {
        let svc = small_service();
        let req = encode(&Request::Run(RunRequest::new(tiny())));
        svc.handle_line(&req); // miss
        svc.handle_line(&req); // hit
        let out = svc.handle_line(&encode(&Request::Metrics));
        let text = match decode::<Response>(&out).expect("decode") {
            Response::Metrics(t) => t,
            other => panic!("{other:?}"),
        };
        let stats = svc.stats_report();
        // Counter values in the exposition match the StatsReport view of
        // the same atomics.
        assert!(
            text.contains(&format!("ugpc_requests_total {}", stats.requests_total)),
            "{text}"
        );
        assert!(
            text.contains(&format!(
                "ugpc_simulations_total {}",
                stats.simulations_executed
            )),
            "{text}"
        );
        assert!(text.contains("ugpc_cache_hits 1"), "{text}");
        assert!(text.contains("ugpc_cache_misses 1"), "{text}");
        assert!(text.contains("# TYPE ugpc_run_miss_latency_us histogram"));
        assert!(text.contains("ugpc_run_miss_latency_us_count 1"), "{text}");
        assert!(text.contains("ugpc_queue_capacity 8"), "{text}");
    }

    #[test]
    fn perfetto_run_embeds_trace_context_and_caches() {
        let svc = small_service();
        let mut req = RunRequest::new(tiny());
        req.perfetto = Some(true);
        req.trace = Some(TraceCtx {
            trace_id: 0x1234,
            span_id: 0x5678,
        });
        let line = encode(&Request::Run(req.clone()));
        let first = svc.handle_line(&line);
        match decode::<Response>(&first).expect("decode") {
            Response::Perfetto(p) => {
                assert_eq!(p.trace_id, "000000001234");
                assert_eq!(p.span_id, "000000005678");
                assert!(p.trace_json.contains("trace_context"), "metadata record");
                assert!(p.trace_json.contains("000000001234"), "trace id embedded");
                assert!(p.report.makespan_s > 0.0);
            }
            other => panic!("{other:?}"),
        }
        // Same supplied context repeats byte-identically from cache.
        assert_eq!(svc.handle_line(&line), first);
        assert_eq!(svc.stats_report().simulations_executed, 1);
        // Perfetto combined with either study mode is rejected.
        for bad in [
            {
                let mut r = req.clone();
                r.power_bins = Some(8);
                r
            },
            {
                let mut r = req.clone();
                r.dynamic_iterations = Some(2);
                r
            },
        ] {
            let out = svc.handle_line(&encode(&Request::Run(bad)));
            match decode::<Response>(&out).expect("decode") {
                Response::Error(e) => assert_eq!(e.code, error_code::INVALID_CONFIG),
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(svc.stats_report().simulations_executed, 1);
    }

    #[test]
    fn run_requests_log_with_trace_ids() {
        let (logger, buf) = Logger::to_buffer(ugpc_telemetry::Level::Debug);
        let svc = Service::with_logger(
            ServeOptions {
                workers: 1,
                queue_capacity: 4,
                cache_capacity: 4,
                ..ServeOptions::default()
            },
            logger,
        );
        let mut req = RunRequest::new(tiny());
        req.trace = Some(TraceCtx {
            trace_id: 0xfeed,
            span_id: 0x1,
        });
        svc.handle_line(&encode(&Request::Run(req)));
        let text = String::from_utf8(buf.lock().clone()).expect("utf8");
        assert!(text.contains("\"run request\""), "{text}");
        assert!(text.contains("00000000feed"), "{text}");
        assert!(text.contains("cache miss, leading simulation"), "{text}");
        // The pool worker's dequeue line carries the same trace id.
        assert!(text.contains("job dequeued"), "{text}");
    }

    #[test]
    fn ping_stats_clear_shutdown() {
        let svc = small_service();
        assert!(matches!(
            decode::<Response>(&svc.handle_line(&encode(&Request::Ping))).expect("decode"),
            Response::Pong
        ));
        let out = svc.handle_line(&encode(&Request::Stats));
        match decode::<Response>(&out).expect("decode") {
            Response::Stats(s) => {
                assert_eq!(s.workers, 2);
                assert_eq!(s.queue_capacity, 8);
            }
            other => panic!("{other:?}"),
        }
        svc.handle_line(&encode(&Request::Run(RunRequest::new(tiny()))));
        assert_eq!(svc.stats_report().cache.entries, 1);
        svc.handle_line(&encode(&Request::ClearCache));
        assert_eq!(svc.stats_report().cache.entries, 0);
        assert!(!svc.shutdown_requested());
        svc.handle_line(&encode(&Request::Shutdown));
        assert!(svc.shutdown_requested());
    }

    #[test]
    fn backpressure_when_queue_full() {
        // One worker (blocked), queue bound 1 (occupied): the next run
        // request must bounce with a structured retry-after error rather
        // than queue without bound or drop anything.
        let svc = Service::new(ServeOptions {
            workers: 1,
            queue_capacity: 1,
            cache_capacity: 8,
            ..ServeOptions::default()
        });
        let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
        svc.pool
            .try_submit(Box::new(move || {
                let _ = gate_rx.recv_timeout(std::time::Duration::from_secs(10));
            }))
            .expect("blocker");
        // Wait for the worker to take the blocker off the queue, then
        // occupy the single queue slot.
        for _ in 0..200 {
            if svc.pool.queue_depth() == 0 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(
            svc.pool.queue_depth(),
            0,
            "worker never picked up the blocker"
        );
        svc.pool.try_submit(Box::new(|| ())).expect("fills queue");
        let out = svc.handle_line(&encode(&Request::Run(RunRequest::new(tiny()))));
        match decode::<Response>(&out).expect("decode") {
            Response::Error(e) => {
                assert_eq!(e.code, error_code::BACKPRESSURE);
                assert!(e.retry_after_ms.is_some());
            }
            other => panic!("expected backpressure, got {other:?}"),
        }
        gate_tx.send(()).expect("release blocker");
        let stats = svc.stats_report();
        assert_eq!(stats.backpressure_rejections, 1);
        // Wait for the blocker and filler to drain, then the same
        // request succeeds: the rejected flight was resolved, not wedged.
        for _ in 0..400 {
            if svc.pool.executed() == 2 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let out = svc.handle_line(&encode(&Request::Run(RunRequest::new(tiny()))));
        assert!(matches!(
            decode::<Response>(&out).expect("decode"),
            Response::Run(_)
        ));
    }
}
