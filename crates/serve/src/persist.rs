//! The persistent cache tier: an append-only log of fulfilled response
//! lines, so a restarted server keeps its corpus and replays cached
//! replies byte-identically.
//!
//! ## Record format
//!
//! Every record is length-prefixed and CRC-checked:
//!
//! ```text
//! [len: u32 LE] [crc32: u32 LE] [key: u64 LE] [payload: len-8 bytes]
//! ```
//!
//! `len` counts the key plus the payload (so `len >= 8`); the CRC-32
//! (IEEE, reflected, polynomial 0xEDB88320) covers exactly those `len`
//! bytes. The payload is the serialized response line — the same bytes
//! the cache hands to clients — so replay after recovery is
//! byte-identical by construction.
//!
//! ## Recovery
//!
//! [`AppendLog::open`] scans the whole file front to back. The first
//! record that is short, over-sized, CRC-corrupt, or not valid UTF-8
//! ends the scan: everything before it is recovered (later records for
//! the same key win, matching append order), and the file is truncated
//! back to the last valid boundary so a torn tail from a crash never
//! poisons future appends. `ClearCache` truncates the log to zero — a
//! cleared corpus must not resurrect on restart.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Guard against absurd length prefixes (a corrupt `len` must not make
/// recovery try to allocate gigabytes): no single response line the
/// service produces approaches this.
const MAX_RECORD_BYTES: u32 = 64 * 1024 * 1024;

/// CRC-32 (IEEE 802.3, reflected): the classic table-less bitwise form.
/// Hand-rolled because the workspace is fully offline — no crc crates.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// One recovered record: the cache key and the response line.
pub type LogRecord = (u64, String);

/// See the module docs.
pub struct AppendLog {
    file: File,
    path: PathBuf,
    /// Records recovered by `open`, drained once by the cache on boot.
    recovered: Vec<LogRecord>,
    /// How many records the scan found (recovery stat, survives drain).
    recovered_count: u64,
    /// Records appended since open (not counting recovered ones).
    appended: u64,
    /// Current file length in bytes.
    bytes: u64,
    /// Bytes the recovery scan discarded as a corrupt or torn tail.
    truncated_bytes: u64,
}

impl AppendLog {
    /// Open (creating if absent) the log at `path`, scan and recover
    /// every valid record, and truncate any corrupt or torn tail.
    pub fn open(path: &Path) -> std::io::Result<AppendLog> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        let (recovered, valid_end) = scan(&raw);
        let truncated_bytes = (raw.len() - valid_end) as u64;
        if truncated_bytes != 0 {
            file.set_len(valid_end as u64)?;
        }
        file.seek(SeekFrom::Start(valid_end as u64))?;
        let recovered_count = recovered.len() as u64;
        Ok(AppendLog {
            file,
            path: path.to_path_buf(),
            recovered,
            recovered_count,
            appended: 0,
            bytes: valid_end as u64,
            truncated_bytes,
        })
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records recovered at open, in append order (drains the buffer;
    /// subsequent calls return empty).
    pub fn take_recovered(&mut self) -> Vec<LogRecord> {
        std::mem::take(&mut self.recovered)
    }

    /// How many records the recovery scan found.
    pub fn recovered_count(&self) -> u64 {
        self.recovered_count
    }

    /// Records appended since open.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Current log size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Bytes the recovery scan cut off as a corrupt or torn tail (0 for
    /// a clean open).
    pub fn truncated_bytes(&self) -> u64 {
        self.truncated_bytes
    }

    /// Append one record. An I/O error is returned to the caller (the
    /// cache logs and keeps serving from memory — persistence is a tier,
    /// not a dependency).
    pub fn append(&mut self, key: u64, payload: &str) -> std::io::Result<()> {
        let body_len = 8 + payload.len();
        let mut rec = Vec::with_capacity(8 + body_len);
        rec.extend_from_slice(&(body_len as u32).to_le_bytes());
        rec.extend_from_slice(&[0; 4]); // crc placeholder
        rec.extend_from_slice(&key.to_le_bytes());
        rec.extend_from_slice(payload.as_bytes());
        let crc = crc32(&rec[8..]);
        rec[4..8].copy_from_slice(&crc.to_le_bytes());
        self.file.write_all(&rec)?;
        self.file.flush()?;
        self.appended += 1;
        self.bytes += rec.len() as u64;
        Ok(())
    }

    /// Truncate the log to zero (the `ClearCache` path).
    pub fn truncate(&mut self) -> std::io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.bytes = 0;
        Ok(())
    }
}

/// Scan raw log bytes: return the valid records and the byte offset of
/// the last valid record boundary.
fn scan(raw: &[u8]) -> (Vec<LogRecord>, usize) {
    let mut records = Vec::new();
    let mut at = 0usize;
    while let Some(header) = raw.get(at..at + 8) {
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
        if !(8..=MAX_RECORD_BYTES).contains(&len) {
            break;
        }
        let Some(body) = raw.get(at + 8..at + 8 + len as usize) else {
            break; // torn tail: record extends past EOF
        };
        if crc32(body) != crc {
            break;
        }
        let key = u64::from_le_bytes([
            body[0], body[1], body[2], body[3], body[4], body[5], body[6], body[7],
        ]);
        let Ok(payload) = std::str::from_utf8(&body[8..]) else {
            break;
        };
        records.push((key, payload.to_string()));
        at += 8 + len as usize;
    }
    (records, at)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ugpc-persist-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join("cache.log")
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_then_reopen_recovers_in_order() {
        let path = tmp("roundtrip");
        {
            let mut log = AppendLog::open(&path).expect("open");
            log.append(1, "first").expect("append");
            log.append(2, "second").expect("append");
            log.append(1, "first-updated").expect("append");
            assert_eq!(log.appended(), 3);
            assert_eq!(log.truncated_bytes(), 0, "clean open truncates nothing");
        }
        let mut log = AppendLog::open(&path).expect("reopen");
        assert_eq!(log.recovered_count(), 3);
        assert_eq!(
            log.take_recovered(),
            vec![
                (1, "first".to_string()),
                (2, "second".to_string()),
                (1, "first-updated".to_string()),
            ],
            "recovery preserves append order so later records win"
        );
        assert!(log.take_recovered().is_empty(), "drained once");
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let path = tmp("torn");
        let full_len = {
            let mut log = AppendLog::open(&path).expect("open");
            log.append(7, "kept").expect("append");
            let boundary = log.bytes();
            log.append(8, "torn-away").expect("append");
            (boundary, log.bytes())
        };
        // Tear the last record in half.
        let raw = std::fs::read(&path).expect("read");
        std::fs::write(&path, &raw[..(full_len.0 as usize + 5)]).expect("tear");
        let mut log = AppendLog::open(&path).expect("reopen");
        assert_eq!(log.take_recovered(), vec![(7, "kept".to_string())]);
        assert_eq!(log.bytes(), full_len.0, "truncated to the last boundary");
        assert_eq!(log.truncated_bytes(), 5, "torn tail bytes are counted");
        // The log accepts appends at the repaired boundary.
        log.append(9, "after-repair").expect("append");
        drop(log);
        let mut log = AppendLog::open(&path).expect("reopen again");
        assert_eq!(
            log.take_recovered(),
            vec![(7, "kept".to_string()), (9, "after-repair".to_string())]
        );
    }

    #[test]
    fn corrupt_crc_ends_the_scan() {
        let path = tmp("crc");
        {
            let mut log = AppendLog::open(&path).expect("open");
            log.append(1, "good").expect("append");
            log.append(2, "flipped").expect("append");
            log.append(3, "unreachable").expect("append");
        }
        let mut raw = std::fs::read(&path).expect("read");
        // Flip one payload byte inside the second record.
        let second_payload_at = (8 + 8 + "good".len()) + 8 + 8;
        raw[second_payload_at] ^= 0xFF;
        std::fs::write(&path, &raw).expect("write corrupt");
        let mut log = AppendLog::open(&path).expect("reopen");
        assert_eq!(
            log.take_recovered(),
            vec![(1, "good".to_string())],
            "scan stops at the first corrupt record"
        );
        assert!(log.bytes() < raw.len() as u64);
        assert_eq!(
            log.truncated_bytes(),
            raw.len() as u64 - log.bytes(),
            "everything after the corruption counts as truncated"
        );
    }

    #[test]
    fn truncate_clears_everything() {
        let path = tmp("truncate");
        let mut log = AppendLog::open(&path).expect("open");
        log.append(1, "x").expect("append");
        log.truncate().expect("truncate");
        assert_eq!(log.bytes(), 0);
        log.append(2, "y").expect("append after truncate");
        drop(log);
        let mut log = AppendLog::open(&path).expect("reopen");
        assert_eq!(log.take_recovered(), vec![(2, "y".to_string())]);
    }
}
