//! Minimal readiness polling for the event-loop transport.
//!
//! The workspace is fully offline (no `libc`/`mio` crates), so on Linux
//! the epoll surface is bound directly with `extern "C"` declarations —
//! a handful of syscall wrappers and one struct, nothing more. Elsewhere
//! a portable sleep-poll fallback reports every registered socket as
//! ready on each tick; sockets are non-blocking, so spurious readiness
//! costs a `WouldBlock` and nothing else.
//!
//! The poller is level-triggered: a socket with buffered input stays
//! ready until drained, which keeps the connection state machine free
//! of edge-trigger re-arm subtleties. Token [`WAKE`] is reserved for the
//! cross-thread wake channel ([`Poller::wake`]). All methods take
//! `&self`, so one thread can block in [`Poller::wait`] while others
//! register sockets or wake it — the documented-safe concurrent use of
//! epoll.

/// Reserved token reported when another thread called [`Poller::wake`].
pub const WAKE: u64 = u64::MAX;

/// What a registration wants to be told about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    Read,
    ReadWrite,
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub token: u64,
    /// Input available — or error/hangup, which a read also surfaces.
    pub readable: bool,
    pub writable: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    use super::{Event, Interest, WAKE};
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_uint, c_void};

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EFD_CLOEXEC: c_int = 0o2000000;
    const EFD_NONBLOCK: c_int = 0o4000;

    /// Events drained per `epoll_wait` call (more stay queued — epoll is
    /// level-triggered, nothing is lost).
    const WAIT_BATCH: usize = 256;

    /// The kernel ABI struct. Packed on x86-64 (the kernel declares it
    /// `__attribute__((packed))` there so 32- and 64-bit layouts match);
    /// naturally aligned everywhere else.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// epoll-backed readiness poller with an eventfd wake channel.
    pub struct Poller {
        epfd: RawFd,
        wakefd: RawFd,
    }

    fn events_for(interest: Interest) -> u32 {
        match interest {
            Interest::Read => EPOLLIN,
            Interest::ReadWrite => EPOLLIN | EPOLLOUT,
        }
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            // SAFETY: plain syscalls creating fds; results are checked.
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            let wakefd = match cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) }) {
                Ok(fd) => fd,
                Err(e) => {
                    // SAFETY: epfd came from epoll_create1 above.
                    unsafe { close(epfd) };
                    return Err(e);
                }
            };
            let poller = Poller { epfd, wakefd };
            let mut ev = EpollEvent {
                events: EPOLLIN,
                data: WAKE,
            };
            // SAFETY: both fds are live and owned by us; ev outlives the call.
            cvt(unsafe { epoll_ctl(poller.epfd, EPOLL_CTL_ADD, poller.wakefd, &mut ev) })?;
            Ok(poller)
        }

        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: events_for(interest),
                data: token,
            };
            // SAFETY: fd is a live socket owned by the caller; ev outlives the call.
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) }).map(drop)
        }

        pub fn rearm(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: events_for(interest),
                data: token,
            };
            // SAFETY: as for register; MOD requires fd already registered.
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_MOD, fd, &mut ev) }).map(drop)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            // DEL ignores the event argument on modern kernels, but a
            // non-null pointer keeps pre-2.6.9 semantics valid.
            let mut ev = EpollEvent { events: 0, data: 0 };
            // SAFETY: fd was registered on this epoll instance.
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(drop)
        }

        /// Wake a concurrent [`Poller::wait`] (or the next one). Safe
        /// from any thread; coalesces (the eventfd counter accumulates).
        pub fn wake(&self) {
            let one: u64 = 1;
            // SAFETY: wakefd is a live eventfd; 8 bytes is its record size.
            let _ = unsafe { write(self.wakefd, (&raw const one).cast(), 8) };
        }

        /// Block up to `timeout_ms` (`-1` = forever) and append readiness
        /// events to `out`. A [`WAKE`] token means another thread called
        /// [`Poller::wake`]; the channel is drained before returning.
        pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            let mut buf = [EpollEvent { events: 0, data: 0 }; WAIT_BATCH];
            let n = loop {
                // SAFETY: buf is valid for WAIT_BATCH events; the kernel
                // writes at most that many.
                let r = unsafe {
                    epoll_wait(self.epfd, buf.as_mut_ptr(), WAIT_BATCH as c_int, timeout_ms)
                };
                match cvt(r) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            for ev in buf.iter().take(n) {
                let bits = ev.events;
                let token = ev.data;
                if token == WAKE {
                    let mut drain: u64 = 0;
                    // SAFETY: nonblocking read of the 8-byte eventfd counter.
                    let _ = unsafe { read(self.wakefd, (&raw mut drain).cast(), 8) };
                }
                out.push(Event {
                    token,
                    readable: bits & (EPOLLIN | EPOLLERR | EPOLLHUP) != 0,
                    writable: bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: both fds were created in new() and are owned here.
            unsafe {
                close(self.epfd);
                close(self.wakefd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::{Event, Interest, WAKE};
    use std::collections::HashMap;
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    /// Portable fallback: report every registered socket as ready each
    /// tick. Non-blocking I/O turns false positives into `WouldBlock`,
    /// so this trades CPU (a 1 ms cadence) for correctness without any
    /// OS-specific code.
    pub struct Poller {
        registered: Mutex<HashMap<RawFd, (u64, Interest)>>,
        woken: AtomicBool,
    }

    impl Poller {
        pub fn new() -> io::Result<Poller> {
            Ok(Poller {
                registered: Mutex::new(HashMap::new()),
                woken: AtomicBool::new(false),
            })
        }

        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.lock().insert(fd, (token, interest));
            Ok(())
        }

        pub fn rearm(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            self.lock().insert(fd, (token, interest));
            Ok(())
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.lock().remove(&fd);
            Ok(())
        }

        pub fn wake(&self) {
            self.woken.store(true, Ordering::SeqCst);
        }

        pub fn wait(&self, out: &mut Vec<Event>, _timeout_ms: i32) -> io::Result<()> {
            std::thread::sleep(std::time::Duration::from_millis(1));
            if self.woken.swap(false, Ordering::SeqCst) {
                out.push(Event {
                    token: WAKE,
                    readable: true,
                    writable: false,
                });
            }
            for (&_fd, &(token, interest)) in self.lock().iter() {
                out.push(Event {
                    token,
                    readable: true,
                    writable: matches!(interest, Interest::ReadWrite),
                });
            }
            Ok(())
        }

        fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<RawFd, (u64, Interest)>> {
            self.registered
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
        }
    }
}

pub use sys::Poller;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn wake_is_visible_across_threads() {
        let poller = Poller::new().expect("poller");
        // No registrations: without the wake this wait would time out.
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(std::time::Duration::from_millis(20));
                poller.wake();
            });
            let mut events = Vec::new();
            let mut woke = false;
            for _ in 0..500 {
                poller.wait(&mut events, 5_000).expect("wait");
                if events.iter().any(|e| e.token == WAKE) {
                    woke = true;
                    break;
                }
                events.clear();
            }
            assert!(woke, "wake token surfaced");
        });
    }

    #[test]
    fn socket_readiness_round_trip() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let mut client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        server.set_nonblocking(true).expect("nonblocking");

        let poller = Poller::new().expect("poller");
        poller
            .register(server.as_raw_fd(), 7, Interest::Read)
            .expect("register");

        client.write_all(b"hello").expect("write");
        let mut events = Vec::new();
        // Up to a few ticks on the fallback poller.
        for _ in 0..200 {
            poller.wait(&mut events, 1_000).expect("wait");
            if events.iter().any(|e| e.token == 7 && e.readable) {
                break;
            }
            events.clear();
        }
        assert!(events.iter().any(|e| e.token == 7 && e.readable));

        let mut server = server;
        let mut buf = [0u8; 8];
        let n = server.read(&mut buf).expect("read");
        assert_eq!(&buf[..n], b"hello");

        // Write interest surfaces on an idle socket.
        poller
            .rearm(server.as_raw_fd(), 7, Interest::ReadWrite)
            .expect("rearm");
        events.clear();
        for _ in 0..200 {
            poller.wait(&mut events, 1_000).expect("wait");
            if events.iter().any(|e| e.token == 7 && e.writable) {
                break;
            }
            events.clear();
        }
        assert!(events.iter().any(|e| e.token == 7 && e.writable));
        poller.deregister(server.as_raw_fd()).expect("deregister");
    }
}
