//! The TCP layer, in one of two architectures selected by
//! [`ServeOptions::mode`](crate::ServeOptions):
//!
//! - [`ServerMode::EventLoop`] (default) — the non-blocking sharded
//!   readiness loop in [`crate::eventloop`], with request pipelining and
//!   batch submission.
//! - [`ServerMode::Blocking`] — the seed architecture kept as the
//!   differential baseline: one OS thread per connection (requests
//!   within a connection are served in order; concurrency comes from
//!   concurrent connections), all simulation work funneled through the
//!   service's bounded pool.
//!
//! Both exit when a `Shutdown` request arrives — the handler sets the
//! service flag and pokes the listener with a loopback connect so
//! `accept` returns. Both produce byte-identical reply lines (the
//! differential suite pins this).

use crate::service::{ServeOptions, ServerMode, Service};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use ugpc_telemetry::Logger;

/// A bound-but-not-yet-serving service instance.
pub struct Server {
    listener: TcpListener,
    service: Arc<Service>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) with the given
    /// options.
    pub fn bind(addr: &str, options: ServeOptions) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            service: Service::new(options),
        })
    }

    /// [`bind`](Server::bind) with an explicit logger — tests use
    /// [`Logger::to_buffer`] to capture the exact JSON log lines the
    /// server emits.
    pub fn bind_with_logger(
        addr: &str,
        options: ServeOptions,
        logger: Arc<Logger>,
    ) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            service: Service::with_logger(options, logger),
        })
    }

    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Serve until shutdown. Blocks the calling thread.
    pub fn run(self) {
        match self.service.options().mode {
            ServerMode::EventLoop => crate::eventloop::serve(self.listener, self.service),
            ServerMode::Blocking => self.run_blocking(),
        }
    }

    /// The seed thread-per-connection accept loop.
    fn run_blocking(self) {
        let addr = self.local_addr();
        for stream in self.listener.incoming() {
            if self.service.shutdown_requested() {
                break;
            }
            match stream {
                Ok(stream) => {
                    let service = self.service.clone();
                    let _ = std::thread::Builder::new()
                        .name("ugpc-serve-conn".to_string())
                        .spawn(move || handle_connection(&service, stream, addr));
                }
                Err(e) => eprintln!("[ugpc-serve] accept error: {e}"),
            }
        }
    }

    /// Serve on a background thread; returns a handle that can stop the
    /// server and join it. Used by tests, examples, and the benchmark
    /// harness.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let service = self.service.clone();
        let join = std::thread::Builder::new()
            .name("ugpc-serve-accept".to_string())
            .spawn(move || self.run())
            .expect("spawn accept thread");
        ServerHandle {
            addr,
            service,
            join: Some(join),
        }
    }
}

/// Handle to a [`Server::spawn`]ed instance.
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<Service>,
    join: Option<JoinHandle<()>>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Request shutdown and join the accept loop.
    pub fn stop(mut self) {
        self.service.request_shutdown();
        // Poke the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if let Some(join) = self.join.take() {
            self.service.request_shutdown();
            let _ = TcpStream::connect(self.addr);
            let _ = join.join();
        }
    }
}

fn handle_connection(service: &Arc<Service>, stream: TcpStream, addr: SocketAddr) {
    // One-line request/response turns: without TCP_NODELAY, Nagle plus
    // the peer's delayed ACK adds ~40 ms to every round trip.
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    {
        *service.metrics.open_connections.lock() += 1;
    }
    service.logger.debug("connection opened", None, &[]);
    let reader = BufReader::new(read_half);
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        // One wire line may yield several reply lines (batch submission).
        let responses = service.handle_line_multi(&line);
        let mut wrote = true;
        for response in &responses {
            if writer.write_all(response.as_bytes()).is_err() || writer.write_all(b"\n").is_err() {
                wrote = false;
                break;
            }
        }
        if !wrote || writer.flush().is_err() {
            break;
        }
        if service.shutdown_requested() {
            // We may have just handled the Shutdown request on this very
            // connection: unblock the accept loop ourselves.
            let _ = TcpStream::connect(addr);
            break;
        }
    }
    *service.metrics.open_connections.lock() -= 1;
    service.logger.debug("connection closed", None, &[]);
}
