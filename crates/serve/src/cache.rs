//! Content-addressed result cache: sharded, single-flight, optionally
//! persistent.
//!
//! Keys are [`CacheKey`]s (canonical config hashes from `ugpc-core`);
//! values are fully serialized response payloads (`Arc<str>` wire
//! lines), so a cache hit is byte-identical to the original computation
//! by construction and costs no re-serialization.
//!
//! **Sharding:** entries live in `2^k` independent shards selected by
//! the low bits of the key, each behind its own lock with its own LRU
//! clock and counters — concurrent connections on different keys never
//! contend. Because a key maps to exactly one shard, per-shard
//! single-flight *is* global single-flight: one leader per key,
//! process-wide (the model checker's `ShardedSingleFlight` variant
//! proves this composition). Shard count is clamped by capacity
//! (`max(1, capacity/32)`, rounded down to a power of two) so small
//! caches keep exact global LRU semantics.
//!
//! **Single-flight:** the first requester of a key becomes its *leader*
//! and computes; concurrent requesters of the same key either park on a
//! condvar ([`ResultCache::wait`]) or subscribe a completion callback
//! ([`ResultCache::subscribe`] — the event loop's non-blocking path) and
//! receive the leader's result — one simulation, N identical responses.
//!
//! **LRU bounding:** at most `capacity` ready entries across all shards
//! (capacity split evenly; per-shard least-recently-touched eviction).
//! In-flight computations don't count against the bound and are never
//! evicted.
//!
//! **Persistence:** with an [`AppendLog`] attached, every retained
//! result is also appended to the log (length-prefixed, CRC-checked; see
//! [`crate::persist`]), and a restarted cache replays the log so hits
//! survive the process — byte-identical, because the log stores the
//! exact response line.

use crate::persist::AppendLog;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError};
use ugpc_core::CacheKey;

/// The outcome a waiter observes for an in-flight computation.
type FlightResult = Result<Arc<str>, String>;

/// A completion callback registered by the non-blocking path.
type FlightCallback = Box<dyn FnOnce(FlightResult) + Send>;

struct FlightState {
    result: Option<FlightResult>,
    callbacks: Vec<FlightCallback>,
}

/// Shared slot the leader fulfills; waiters park on the condvar
/// ([`ResultCache::wait`]) or register a callback
/// ([`ResultCache::subscribe`]). Uses `std::sync` rather than the
/// parking_lot shim because the shim carries no `Condvar`; poisoning is
/// ignored (a panicked leader is reported through the [`LeadGuard`] drop
/// path, not the lock).
pub struct Flight {
    slot: std::sync::Mutex<FlightState>,
    cv: std::sync::Condvar,
}

impl Flight {
    fn new() -> Arc<Flight> {
        Arc::new(Flight {
            slot: std::sync::Mutex::new(FlightState {
                result: None,
                callbacks: Vec::new(),
            }),
            cv: std::sync::Condvar::new(),
        })
    }
}

enum Entry {
    /// Computation in progress; waiters hold the same `Arc<Flight>`.
    Pending(Arc<Flight>),
    /// Finished result plus its last-touch tick for LRU ordering.
    Ready { value: Arc<str>, touched: u64 },
}

/// Monotonic counters, readable without the map lock. Each shard owns a
/// set; [`ResultCache::counters_snapshot`] sums them.
#[derive(Debug, Default)]
pub struct CacheCounters {
    /// Requests answered from a ready entry.
    pub hits: AtomicU64,
    /// Requests that became computation leaders.
    pub misses: AtomicU64,
    /// Requests that parked behind an in-flight leader.
    pub coalesced: AtomicU64,
    /// Ready entries dropped by the LRU bound.
    pub evictions: AtomicU64,
}

/// Plain-value sum of every shard's [`CacheCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCountersSnapshot {
    pub hits: u64,
    pub misses: u64,
    pub coalesced: u64,
    pub evictions: u64,
}

/// Health snapshot of the persistent append-log tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistSnapshot {
    pub path: String,
    /// Records the recovery scan replayed at open.
    pub recovered: u64,
    /// Records appended since open.
    pub appended: u64,
    /// Current log size in bytes.
    pub bytes: u64,
    /// Bytes discarded at open as a corrupt or torn tail.
    pub truncated_bytes: u64,
    /// Append failures since open (the cache keeps serving from memory).
    pub errors: u64,
}

/// What [`ResultCache::begin`] tells a requester to do.
pub enum Begin {
    /// Ready value — answer immediately, no simulation.
    Hit(Arc<str>),
    /// Someone else is computing this key — park on the flight
    /// ([`ResultCache::wait`]) or subscribe ([`ResultCache::subscribe`]).
    Wait(Arc<Flight>),
    /// You are the leader: compute, then [`LeadGuard::fulfill`] (the
    /// guard reports failure automatically if you unwind first).
    Lead(LeadGuard),
}

/// Leader's obligation token. Dropping it without fulfilling (worker
/// panic, pool rejection) fails the flight so waiters wake with an
/// error instead of parking forever.
pub struct LeadGuard {
    cache: Arc<ResultCache>,
    key: CacheKey,
    flight: Arc<Flight>,
    done: bool,
}

impl LeadGuard {
    pub fn key(&self) -> CacheKey {
        self.key
    }

    /// The flight this leader owes a result to. The non-blocking leader
    /// path subscribes to its own flight here instead of re-`begin`ning
    /// the key (which would double-count a coalesced waiter).
    pub fn flight(&self) -> Arc<Flight> {
        self.flight.clone()
    }

    /// Publish the computed payload: the entry becomes ready (subject to
    /// the LRU bound) and all waiters wake with it.
    pub fn fulfill(mut self, value: Arc<str>) {
        self.done = true;
        self.cache.finish(self.key, &self.flight, Ok(value));
    }

    /// Fail the flight: nothing is cached, waiters wake with the error.
    pub fn fail(mut self, message: String) {
        self.done = true;
        self.cache.finish(self.key, &self.flight, Err(message));
    }
}

impl Drop for LeadGuard {
    fn drop(&mut self) {
        if !self.done {
            self.cache.finish(
                self.key,
                &self.flight,
                Err("simulation worker failed".to_string()),
            );
        }
    }
}

/// One independent slice of the cache: its own lock, LRU clock,
/// capacity share, and counters.
struct Shard {
    map: Mutex<HashMap<u64, Entry>>,
    capacity: usize,
    clock: AtomicU64,
    counters: CacheCounters,
}

impl Shard {
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Evict least-recently-touched ready entries until at most `target`
    /// remain. Linear scan per eviction — fine for the bounded,
    /// ops-sized per-shard capacities this service uses.
    fn evict_to(&self, target: usize, map: &mut HashMap<u64, Entry>) {
        loop {
            let ready = map
                .iter()
                .filter_map(|(k, e)| match e {
                    Entry::Ready { touched, .. } => Some((*touched, *k)),
                    Entry::Pending(_) => None,
                })
                .collect::<Vec<_>>();
            if ready.len() <= target {
                return;
            }
            if let Some(&(_, oldest)) = ready.iter().min() {
                map.remove(&oldest);
                self.counters.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// See the module docs.
pub struct ResultCache {
    shards: Vec<Shard>,
    /// `shards.len() - 1` (shard count is a power of two).
    mask: u64,
    capacity: usize,
    persist: Option<Mutex<AppendLog>>,
    /// Appends that failed with an I/O error (the cache keeps serving
    /// from memory; persistence is a tier, not a dependency).
    persist_errors: AtomicU64,
}

/// Largest power of two `<= v` (v >= 1).
fn floor_pow2(v: usize) -> usize {
    debug_assert!(v >= 1);
    1 << (usize::BITS - 1 - v.leading_zeros())
}

impl ResultCache {
    /// `capacity` bounds *ready* entries; 0 disables caching entirely
    /// (every request is a leader, nothing is retained). Single shard —
    /// the seed configuration.
    pub fn new(capacity: usize) -> Arc<Self> {
        Self::with_options(capacity, 1, None)
    }

    /// A cache with up to `shards` shards (rounded down to a power of
    /// two and clamped to `max(1, capacity/32)` so small caches keep
    /// exact global LRU semantics) and an optional persistent tier. Any
    /// records the log recovered are replayed into the shards — later
    /// records for a key win, and the LRU bound applies as usual.
    pub fn with_options(capacity: usize, shards: usize, persist: Option<AppendLog>) -> Arc<Self> {
        let clamp = (capacity / 32).max(1);
        let n = floor_pow2(shards.max(1).min(clamp));
        let shards: Vec<Shard> = (0..n)
            .map(|i| Shard {
                map: Mutex::new(HashMap::new()),
                // Split capacity evenly; the remainder goes to the first
                // shards so the shard capacities sum exactly to `capacity`.
                capacity: capacity / n + usize::from(i < capacity % n),
                clock: AtomicU64::new(0),
                counters: CacheCounters::default(),
            })
            .collect();
        let mut cache = ResultCache {
            shards,
            mask: (n - 1) as u64,
            capacity,
            persist: None,
            persist_errors: AtomicU64::new(0),
        };
        if let Some(mut log) = persist {
            for (key, line) in log.take_recovered() {
                cache.seed_ready(CacheKey(key), line.into());
            }
            cache.persist = Some(Mutex::new(log));
        }
        Arc::new(cache)
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, key: CacheKey) -> &Shard {
        &self.shards[(key.0 & self.mask) as usize]
    }

    /// Insert a recovered record as a ready entry (recovery path only:
    /// no counter bumps beyond natural evictions, no log append — the
    /// record is already in the log).
    fn seed_ready(&mut self, key: CacheKey, value: Arc<str>) {
        let shard = &self.shards[(key.0 & self.mask) as usize];
        if shard.capacity == 0 {
            return;
        }
        let mut map = shard.map.lock();
        // Replaying over an existing key (later log records win) must
        // not trip the bound check into evicting an unrelated entry.
        if !map.contains_key(&key.0) {
            shard.evict_to(shard.capacity - 1, &mut map);
        }
        let touched = shard.tick();
        map.insert(key.0, Entry::Ready { value, touched });
    }

    /// Look up `key`, registering this requester as hit, waiter, or
    /// leader (see [`Begin`]).
    pub fn begin(self: &Arc<Self>, key: CacheKey) -> Begin {
        let shard = self.shard(key);
        let mut map = shard.map.lock();
        match map.get_mut(&key.0) {
            Some(Entry::Ready { value, touched }) => {
                *touched = shard.tick();
                shard.counters.hits.fetch_add(1, Ordering::Relaxed);
                Begin::Hit(value.clone())
            }
            Some(Entry::Pending(flight)) => {
                shard.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                Begin::Wait(flight.clone())
            }
            None => {
                shard.counters.misses.fetch_add(1, Ordering::Relaxed);
                let flight = Flight::new();
                map.insert(key.0, Entry::Pending(flight.clone()));
                Begin::Lead(LeadGuard {
                    cache: self.clone(),
                    key,
                    flight,
                    done: false,
                })
            }
        }
    }

    /// Hit-only probe: returns the ready entry (touching its LRU slot
    /// and counting the hit, exactly like the `Hit` arm of
    /// [`begin`](ResultCache::begin)) or `None` — with **no** side
    /// effects on a miss or an in-flight entry. The event loop's
    /// request-identity fast path uses this before falling back to the
    /// full parse-validate-begin sequence.
    pub fn probe(&self, key: CacheKey) -> Option<Arc<str>> {
        let shard = self.shard(key);
        let mut map = shard.map.lock();
        match map.get_mut(&key.0) {
            Some(Entry::Ready { value, touched }) => {
                *touched = shard.tick();
                shard.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(value.clone())
            }
            _ => None,
        }
    }

    /// Park until the flight resolves; returns the leader's outcome.
    pub fn wait(flight: &Flight) -> FlightResult {
        let mut slot = flight.slot.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(r) = slot.result.as_ref() {
                return r.clone();
            }
            slot = flight.cv.wait(slot).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Register a completion callback instead of blocking: `callback`
    /// runs exactly once with the flight's outcome — immediately (on the
    /// calling thread) if the flight already resolved, otherwise on the
    /// resolving thread. The event loop's non-blocking coalesce path.
    pub fn subscribe(flight: &Flight, callback: FlightCallback) {
        let mut slot = flight.slot.lock().unwrap_or_else(PoisonError::into_inner);
        match slot.result.clone() {
            Some(r) => {
                // Invoke outside the slot lock.
                drop(slot);
                callback(r);
            }
            None => slot.callbacks.push(callback),
        }
    }

    /// Resolve a flight: store the result (evicting per LRU if needed,
    /// appending to the persistent tier if attached), wake every waiter,
    /// run every subscribed callback.
    fn finish(&self, key: CacheKey, flight: &Arc<Flight>, result: FlightResult) {
        let mut retained = false;
        {
            let shard = self.shard(key);
            let mut map = shard.map.lock();
            // Replace the pending entry we own. ClearCache may have
            // removed it meanwhile; then the result is simply not cached.
            let ours = matches!(map.get(&key.0), Some(Entry::Pending(p)) if Arc::ptr_eq(p, flight));
            if ours {
                map.remove(&key.0);
                if let Ok(value) = &result {
                    if shard.capacity > 0 {
                        shard.evict_to(shard.capacity - 1, &mut map);
                        let touched = shard.tick();
                        map.insert(
                            key.0,
                            Entry::Ready {
                                value: value.clone(),
                                touched,
                            },
                        );
                        retained = true;
                    }
                }
            }
        }
        if retained {
            if let (Some(log), Ok(value)) = (&self.persist, &result) {
                if log.lock().append(key.0, value).is_err() {
                    self.persist_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let callbacks = {
            let mut slot = flight.slot.lock().unwrap_or_else(PoisonError::into_inner);
            slot.result = Some(result.clone());
            flight.cv.notify_all();
            std::mem::take(&mut slot.callbacks)
        };
        for cb in callbacks {
            cb(result.clone());
        }
    }

    /// Drop every ready entry (and truncate the persistent tier, if
    /// attached — a cleared corpus must not resurrect on restart).
    /// Pending flights keep running, publish to their waiters, and are
    /// retained on completion — a result computed after the clear is
    /// fresh by definition.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard
                .map
                .lock()
                .retain(|_, e| matches!(e, Entry::Pending(_)));
        }
        if let Some(log) = &self.persist {
            if log.lock().truncate().is_err() {
                self.persist_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Number of ready entries currently held, across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.map
                    .lock()
                    .values()
                    .filter(|e| matches!(e, Entry::Ready { .. }))
                    .count()
            })
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Sum of every shard's counters.
    pub fn counters_snapshot(&self) -> CacheCountersSnapshot {
        let mut out = CacheCountersSnapshot::default();
        for s in &self.shards {
            out.hits += s.counters.hits.load(Ordering::Relaxed);
            out.misses += s.counters.misses.load(Ordering::Relaxed);
            out.coalesced += s.counters.coalesced.load(Ordering::Relaxed);
            out.evictions += s.counters.evictions.load(Ordering::Relaxed);
        }
        out
    }

    /// A snapshot of the persistent tier's health, if one is attached.
    pub fn persist_stats(&self) -> Option<PersistSnapshot> {
        self.persist.as_ref().map(|log| {
            let log = log.lock();
            PersistSnapshot {
                path: log.path().display().to_string(),
                recovered: log.recovered_count(),
                appended: log.appended(),
                bytes: log.bytes(),
                truncated_bytes: log.truncated_bytes(),
                errors: self.persist_errors.load(Ordering::Relaxed),
            }
        })
    }

    /// hits / (hits + misses + coalesced), 0.0 when nothing happened yet.
    /// Coalesced waiters count toward the denominator only: they did not
    /// simulate, but they did not reuse a *finished* result either.
    pub fn hit_rate(&self) -> f64 {
        let c = self.counters_snapshot();
        let total = (c.hits + c.misses + c.coalesced) as f64;
        if total == 0.0 {
            0.0
        } else {
            c.hits as f64 / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    fn get_or_compute(
        cache: &Arc<ResultCache>,
        key: CacheKey,
        f: impl FnOnce() -> String,
    ) -> Arc<str> {
        match cache.begin(key) {
            Begin::Hit(v) => v,
            Begin::Wait(flight) => ResultCache::wait(&flight).expect("flight ok"),
            Begin::Lead(guard) => {
                let v: Arc<str> = f().into();
                guard.fulfill(v.clone());
                v
            }
        }
    }

    #[test]
    fn hit_after_miss() {
        let cache = ResultCache::new(8);
        let k = CacheKey(42);
        let a = get_or_compute(&cache, k, || "payload".to_string());
        let b = get_or_compute(&cache, k, || panic!("must not recompute"));
        assert_eq!(a, b);
        let c = cache.counters_snapshot();
        assert_eq!(c.misses, 1);
        assert_eq!(c.hits, 1);
        assert!(cache.hit_rate() > 0.0);
    }

    #[test]
    fn single_flight_computes_once() {
        let cache = ResultCache::new(8);
        let computations = AtomicUsize::new(0);
        let n = 8;
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..n {
                handles.push(s.spawn(|| {
                    get_or_compute(&cache, CacheKey(7), || {
                        computations.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open long enough for the other
                        // threads to park behind it.
                        std::thread::sleep(Duration::from_millis(50));
                        "result".to_string()
                    })
                }));
            }
            let results: Vec<Arc<str>> = handles
                .into_iter()
                .map(|h| h.join().expect("join"))
                .collect();
            for r in &results {
                assert_eq!(&**r, "result");
            }
        });
        assert_eq!(
            computations.load(Ordering::SeqCst),
            1,
            "exactly one simulation"
        );
        let c = cache.counters_snapshot();
        assert_eq!(c.misses, 1);
        // Everyone else either coalesced behind the flight or (rarely,
        // if the leader finished first) hit the ready entry.
        assert_eq!(c.coalesced + c.hits, (n - 1) as u64);
    }

    #[test]
    fn lru_bound_and_order() {
        let cache = ResultCache::new(2);
        for i in 0..2u64 {
            get_or_compute(&cache, CacheKey(i), || format!("v{i}"));
        }
        // Touch key 0 so key 1 is the LRU victim.
        get_or_compute(&cache, CacheKey(0), || panic!("hit expected"));
        get_or_compute(&cache, CacheKey(2), || "v2".to_string());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.counters_snapshot().evictions, 1);
        // Key 0 survived; key 1 was evicted and recomputes.
        get_or_compute(&cache, CacheKey(0), || panic!("0 must have survived"));
        let recomputed = AtomicUsize::new(0);
        get_or_compute(&cache, CacheKey(1), || {
            recomputed.fetch_add(1, Ordering::SeqCst);
            "v1-again".to_string()
        });
        assert_eq!(recomputed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn zero_capacity_disables_retention() {
        let cache = ResultCache::new(0);
        let computed = AtomicUsize::new(0);
        for _ in 0..3 {
            get_or_compute(&cache, CacheKey(1), || {
                computed.fetch_add(1, Ordering::SeqCst);
                "x".to_string()
            });
        }
        assert_eq!(computed.load(Ordering::SeqCst), 3);
        assert!(cache.is_empty());
    }

    #[test]
    fn dropped_leader_fails_waiters() {
        let cache = ResultCache::new(4);
        let k = CacheKey(9);
        let guard = match cache.begin(k) {
            Begin::Lead(g) => g,
            _ => panic!("first requester must lead"),
        };
        let waiter = {
            let cache = cache.clone();
            std::thread::spawn(move || match cache.begin(k) {
                Begin::Wait(f) => ResultCache::wait(&f),
                _ => panic!("second requester must wait"),
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        drop(guard); // leader dies without fulfilling
        let res = waiter.join().expect("join");
        assert!(res.is_err(), "waiter must see the failure");
        // The key is free again: a new leader can claim it.
        assert!(matches!(cache.begin(k), Begin::Lead(_)));
    }

    #[test]
    fn clear_drops_ready_entries_only() {
        let cache = ResultCache::new(4);
        get_or_compute(&cache, CacheKey(1), || "a".to_string());
        let pending = match cache.begin(CacheKey(2)) {
            Begin::Lead(g) => g,
            _ => panic!("lead"),
        };
        cache.clear();
        assert!(cache.is_empty());
        // The in-flight computation still publishes to its waiters, and
        // its result — computed after the clear, hence fresh — is cached.
        pending.fulfill("b".into());
        match cache.begin(CacheKey(2)) {
            Begin::Hit(v) => assert_eq!(&*v, "b"),
            _ => panic!("fresh in-flight result must be retained"),
        }
    }

    #[test]
    fn shard_count_is_clamped_by_capacity() {
        // Tiny caches collapse to one shard (exact global LRU), big
        // caches honor the request rounded down to a power of two.
        assert_eq!(ResultCache::with_options(2, 8, None).shard_count(), 1);
        assert_eq!(ResultCache::with_options(16, 8, None).shard_count(), 1);
        assert_eq!(ResultCache::with_options(64, 8, None).shard_count(), 2);
        assert_eq!(ResultCache::with_options(256, 8, None).shard_count(), 8);
        assert_eq!(ResultCache::with_options(256, 7, None).shard_count(), 4);
        assert_eq!(ResultCache::with_options(4096, 1, None).shard_count(), 1);
    }

    #[test]
    fn sharded_cache_keeps_per_key_single_flight_and_global_bound() {
        let cache = ResultCache::with_options(256, 8, None);
        assert_eq!(cache.shard_count(), 8);
        // Keys landing in different shards lead independently...
        let g0 = match cache.begin(CacheKey(0)) {
            Begin::Lead(g) => g,
            _ => panic!("lead"),
        };
        let g1 = match cache.begin(CacheKey(1)) {
            Begin::Lead(g) => g,
            _ => panic!("lead"),
        };
        // ...while a same-key requester still coalesces (per-shard
        // single-flight is global: a key maps to exactly one shard).
        assert!(matches!(cache.begin(CacheKey(0)), Begin::Wait(_)));
        g0.fulfill("a".into());
        g1.fulfill("b".into());
        assert_eq!(cache.len(), 2);
        // Fill well past any single shard's share: the global bound holds.
        for k in 0..600u64 {
            get_or_compute(&cache, CacheKey(k), || format!("v{k}"));
        }
        assert!(cache.len() <= 256, "global bound: {}", cache.len());
        assert!(cache.counters_snapshot().evictions > 0);
    }

    #[test]
    fn subscribe_runs_once_resolved_or_immediately() {
        let cache = ResultCache::new(8);
        let k = CacheKey(3);
        let guard = match cache.begin(k) {
            Begin::Lead(g) => g,
            _ => panic!("lead"),
        };
        let flight = guard.flight();
        let fired = Arc::new(Mutex::new(Vec::<String>::new()));
        {
            let fired = fired.clone();
            ResultCache::subscribe(
                &flight,
                Box::new(move |r| fired.lock().push(r.expect("ok").to_string())),
            );
        }
        assert!(fired.lock().is_empty(), "not resolved yet");
        guard.fulfill("done".into());
        assert_eq!(*fired.lock(), vec!["done".to_string()]);
        // Subscribing after resolution invokes immediately.
        {
            let fired = fired.clone();
            ResultCache::subscribe(
                &flight,
                Box::new(move |r| fired.lock().push(r.expect("ok").to_string())),
            );
        }
        assert_eq!(fired.lock().len(), 2);
        // A failed flight delivers the error to subscribers too.
        let guard = match cache.begin(CacheKey(4)) {
            Begin::Lead(g) => g,
            _ => panic!("lead"),
        };
        let flight = guard.flight();
        let errs = Arc::new(Mutex::new(Vec::<String>::new()));
        {
            let errs = errs.clone();
            ResultCache::subscribe(
                &flight,
                Box::new(move |r| errs.lock().push(r.expect_err("failed"))),
            );
        }
        drop(guard);
        assert_eq!(errs.lock().len(), 1);
    }

    #[test]
    fn persistent_tier_replays_after_restart() {
        let dir = std::env::temp_dir().join(format!("ugpc-cache-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("cache.log");
        {
            let log = AppendLog::open(&path).expect("open");
            let cache = ResultCache::with_options(64, 2, Some(log));
            get_or_compute(&cache, CacheKey(1), || "one".to_string());
            get_or_compute(&cache, CacheKey(2), || "two".to_string());
            let p = cache.persist_stats().expect("persist attached");
            assert_eq!((p.recovered, p.appended, p.errors), (0, 2, 0));
            assert_eq!(p.truncated_bytes, 0, "clean log has no torn tail");
            assert!(p.bytes > 0);
        }
        // "Restart": a fresh cache over the same log serves both keys
        // without recomputing, byte-identically.
        let log = AppendLog::open(&path).expect("reopen");
        let cache = ResultCache::with_options(64, 2, Some(log));
        assert_eq!(cache.len(), 2);
        let one = get_or_compute(&cache, CacheKey(1), || panic!("recovered"));
        assert_eq!(&*one, "one");
        let two = get_or_compute(&cache, CacheKey(2), || panic!("recovered"));
        assert_eq!(&*two, "two");
        let p = cache.persist_stats().expect("attached");
        assert_eq!((p.recovered, p.appended), (2, 0));
        // ClearCache truncates the log: a second restart starts cold.
        cache.clear();
        drop(cache);
        let log = AppendLog::open(&path).expect("reopen cleared");
        let cache = ResultCache::with_options(64, 2, Some(log));
        assert!(cache.is_empty(), "cleared corpus must not resurrect");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
