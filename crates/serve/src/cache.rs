//! Content-addressed result cache with single-flight deduplication.
//!
//! Keys are [`CacheKey`]s (canonical config hashes from `ugpc-core`);
//! values are fully serialized response payloads (`Arc<str>` wire
//! lines), so a cache hit is byte-identical to the original computation
//! by construction and costs no re-serialization.
//!
//! **Single-flight:** the first requester of a key becomes its *leader*
//! and computes; concurrent requesters of the same key park on a condvar
//! and receive the leader's result — one simulation, N identical
//! responses. **LRU bounding:** at most `capacity` ready entries; on
//! insert beyond that, the least-recently-touched entry is evicted
//! (in-flight computations don't count against the bound and are never
//! evicted). All counters are exposed for the `stats` endpoint.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError};
use ugpc_core::CacheKey;

/// The outcome a waiter observes for an in-flight computation.
type FlightResult = Result<Arc<str>, String>;

/// Shared slot the leader fulfills and waiters park on. Uses `std::sync`
/// rather than the parking_lot shim because the shim carries no
/// `Condvar`; poisoning is ignored (a panicked leader is reported
/// through the [`LeadGuard`] drop path, not the lock).
pub struct Flight {
    slot: std::sync::Mutex<Option<FlightResult>>,
    cv: std::sync::Condvar,
}

enum Entry {
    /// Computation in progress; waiters hold the same `Arc<Flight>`.
    Pending(Arc<Flight>),
    /// Finished result plus its last-touch tick for LRU ordering.
    Ready { value: Arc<str>, touched: u64 },
}

/// Monotonic counters, readable without the map lock.
#[derive(Debug, Default)]
pub struct CacheCounters {
    /// Requests answered from a ready entry.
    pub hits: AtomicU64,
    /// Requests that became computation leaders.
    pub misses: AtomicU64,
    /// Requests that parked behind an in-flight leader.
    pub coalesced: AtomicU64,
    /// Ready entries dropped by the LRU bound.
    pub evictions: AtomicU64,
}

/// What [`ResultCache::begin`] tells a requester to do.
pub enum Begin {
    /// Ready value — answer immediately, no simulation.
    Hit(Arc<str>),
    /// Someone else is computing this key — park on the flight.
    Wait(Arc<Flight>),
    /// You are the leader: compute, then [`ResultCache::fulfill`] (the
    /// [`LeadGuard`] reports failure automatically if you unwind first).
    Lead(LeadGuard),
}

/// Leader's obligation token. Dropping it without fulfilling (worker
/// panic, pool rejection) fails the flight so waiters wake with an
/// error instead of parking forever.
pub struct LeadGuard {
    cache: Arc<ResultCache>,
    key: CacheKey,
    flight: Arc<Flight>,
    done: bool,
}

impl LeadGuard {
    pub fn key(&self) -> CacheKey {
        self.key
    }

    /// Publish the computed payload: the entry becomes ready (subject to
    /// the LRU bound) and all waiters wake with it.
    pub fn fulfill(mut self, value: Arc<str>) {
        self.done = true;
        self.cache.finish(self.key, &self.flight, Ok(value));
    }

    /// Fail the flight: nothing is cached, waiters wake with the error.
    pub fn fail(mut self, message: String) {
        self.done = true;
        self.cache.finish(self.key, &self.flight, Err(message));
    }
}

impl Drop for LeadGuard {
    fn drop(&mut self) {
        if !self.done {
            self.cache.finish(
                self.key,
                &self.flight,
                Err("simulation worker failed".to_string()),
            );
        }
    }
}

/// See the module docs.
pub struct ResultCache {
    map: Mutex<HashMap<u64, Entry>>,
    capacity: usize,
    clock: AtomicU64,
    pub counters: CacheCounters,
}

impl ResultCache {
    /// `capacity` bounds *ready* entries; 0 disables caching entirely
    /// (every request is a leader, nothing is retained).
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(ResultCache {
            map: Mutex::new(HashMap::new()),
            capacity,
            clock: AtomicU64::new(0),
            counters: CacheCounters::default(),
        })
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Look up `key`, registering this requester as hit, waiter, or
    /// leader (see [`Begin`]).
    pub fn begin(self: &Arc<Self>, key: CacheKey) -> Begin {
        let mut map = self.map.lock();
        match map.get_mut(&key.0) {
            Some(Entry::Ready { value, touched }) => {
                *touched = self.tick();
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Begin::Hit(value.clone())
            }
            Some(Entry::Pending(flight)) => {
                self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                Begin::Wait(flight.clone())
            }
            None => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                let flight = Arc::new(Flight {
                    slot: std::sync::Mutex::new(None),
                    cv: std::sync::Condvar::new(),
                });
                map.insert(key.0, Entry::Pending(flight.clone()));
                Begin::Lead(LeadGuard {
                    cache: self.clone(),
                    key,
                    flight,
                    done: false,
                })
            }
        }
    }

    /// Park until the flight resolves; returns the leader's outcome.
    pub fn wait(flight: &Flight) -> FlightResult {
        let mut slot = flight.slot.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(r) = slot.as_ref() {
                return r.clone();
            }
            slot = flight.cv.wait(slot).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Resolve a flight: store the result (evicting per LRU if needed),
    /// wake every waiter.
    fn finish(&self, key: CacheKey, flight: &Arc<Flight>, result: FlightResult) {
        {
            let mut map = self.map.lock();
            // Replace the pending entry we own. ClearCache may have
            // removed it meanwhile; then the result is simply not cached.
            let ours = matches!(map.get(&key.0), Some(Entry::Pending(p)) if Arc::ptr_eq(p, flight));
            if ours {
                map.remove(&key.0);
                if let Ok(value) = &result {
                    if self.capacity > 0 {
                        self.evict_to(self.capacity - 1, &mut map);
                        map.insert(
                            key.0,
                            Entry::Ready {
                                value: value.clone(),
                                touched: self.tick(),
                            },
                        );
                    }
                }
            }
        }
        *flight.slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
        flight.cv.notify_all();
    }

    /// Evict least-recently-touched ready entries until at most `target`
    /// remain. Linear scan per eviction — fine for the bounded, ops-sized
    /// capacities this service uses.
    fn evict_to(&self, target: usize, map: &mut HashMap<u64, Entry>) {
        loop {
            let ready = map
                .iter()
                .filter_map(|(k, e)| match e {
                    Entry::Ready { touched, .. } => Some((*touched, *k)),
                    Entry::Pending(_) => None,
                })
                .collect::<Vec<_>>();
            if ready.len() <= target {
                return;
            }
            if let Some(&(_, oldest)) = ready.iter().min() {
                map.remove(&oldest);
                self.counters.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Drop every ready entry. Pending flights keep running, publish to
    /// their waiters, and are retained on completion — a result computed
    /// after the clear is fresh by definition.
    pub fn clear(&self) {
        self.map
            .lock()
            .retain(|_, e| matches!(e, Entry::Pending(_)));
    }

    /// Number of ready entries currently held.
    pub fn len(&self) -> usize {
        self.map
            .lock()
            .values()
            .filter(|e| matches!(e, Entry::Ready { .. }))
            .count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// hits / (hits + misses + coalesced), 0.0 when nothing happened yet.
    /// Coalesced waiters count toward the denominator only: they did not
    /// simulate, but they did not reuse a *finished* result either.
    pub fn hit_rate(&self) -> f64 {
        let h = self.counters.hits.load(Ordering::Relaxed) as f64;
        let total = h
            + self.counters.misses.load(Ordering::Relaxed) as f64
            + self.counters.coalesced.load(Ordering::Relaxed) as f64;
        if total == 0.0 {
            0.0
        } else {
            h / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    fn get_or_compute(
        cache: &Arc<ResultCache>,
        key: CacheKey,
        f: impl FnOnce() -> String,
    ) -> Arc<str> {
        match cache.begin(key) {
            Begin::Hit(v) => v,
            Begin::Wait(flight) => ResultCache::wait(&flight).expect("flight ok"),
            Begin::Lead(guard) => {
                let v: Arc<str> = f().into();
                guard.fulfill(v.clone());
                v
            }
        }
    }

    #[test]
    fn hit_after_miss() {
        let cache = ResultCache::new(8);
        let k = CacheKey(42);
        let a = get_or_compute(&cache, k, || "payload".to_string());
        let b = get_or_compute(&cache, k, || panic!("must not recompute"));
        assert_eq!(a, b);
        assert_eq!(cache.counters.misses.load(Ordering::Relaxed), 1);
        assert_eq!(cache.counters.hits.load(Ordering::Relaxed), 1);
        assert!(cache.hit_rate() > 0.0);
    }

    #[test]
    fn single_flight_computes_once() {
        let cache = ResultCache::new(8);
        let computations = AtomicUsize::new(0);
        let n = 8;
        std::thread::scope(|s| {
            let mut handles = Vec::new();
            for _ in 0..n {
                handles.push(s.spawn(|| {
                    get_or_compute(&cache, CacheKey(7), || {
                        computations.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open long enough for the other
                        // threads to park behind it.
                        std::thread::sleep(Duration::from_millis(50));
                        "result".to_string()
                    })
                }));
            }
            let results: Vec<Arc<str>> = handles
                .into_iter()
                .map(|h| h.join().expect("join"))
                .collect();
            for r in &results {
                assert_eq!(&**r, "result");
            }
        });
        assert_eq!(
            computations.load(Ordering::SeqCst),
            1,
            "exactly one simulation"
        );
        assert_eq!(cache.counters.misses.load(Ordering::Relaxed), 1);
        // Everyone else either coalesced behind the flight or (rarely,
        // if the leader finished first) hit the ready entry.
        let others = cache.counters.coalesced.load(Ordering::Relaxed)
            + cache.counters.hits.load(Ordering::Relaxed);
        assert_eq!(others, (n - 1) as u64);
    }

    #[test]
    fn lru_bound_and_order() {
        let cache = ResultCache::new(2);
        for i in 0..2u64 {
            get_or_compute(&cache, CacheKey(i), || format!("v{i}"));
        }
        // Touch key 0 so key 1 is the LRU victim.
        get_or_compute(&cache, CacheKey(0), || panic!("hit expected"));
        get_or_compute(&cache, CacheKey(2), || "v2".to_string());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.counters.evictions.load(Ordering::Relaxed), 1);
        // Key 0 survived; key 1 was evicted and recomputes.
        get_or_compute(&cache, CacheKey(0), || panic!("0 must have survived"));
        let recomputed = AtomicUsize::new(0);
        get_or_compute(&cache, CacheKey(1), || {
            recomputed.fetch_add(1, Ordering::SeqCst);
            "v1-again".to_string()
        });
        assert_eq!(recomputed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn zero_capacity_disables_retention() {
        let cache = ResultCache::new(0);
        let computed = AtomicUsize::new(0);
        for _ in 0..3 {
            get_or_compute(&cache, CacheKey(1), || {
                computed.fetch_add(1, Ordering::SeqCst);
                "x".to_string()
            });
        }
        assert_eq!(computed.load(Ordering::SeqCst), 3);
        assert!(cache.is_empty());
    }

    #[test]
    fn dropped_leader_fails_waiters() {
        let cache = ResultCache::new(4);
        let k = CacheKey(9);
        let guard = match cache.begin(k) {
            Begin::Lead(g) => g,
            _ => panic!("first requester must lead"),
        };
        let waiter = {
            let cache = cache.clone();
            std::thread::spawn(move || match cache.begin(k) {
                Begin::Wait(f) => ResultCache::wait(&f),
                _ => panic!("second requester must wait"),
            })
        };
        std::thread::sleep(Duration::from_millis(30));
        drop(guard); // leader dies without fulfilling
        let res = waiter.join().expect("join");
        assert!(res.is_err(), "waiter must see the failure");
        // The key is free again: a new leader can claim it.
        assert!(matches!(cache.begin(k), Begin::Lead(_)));
    }

    #[test]
    fn clear_drops_ready_entries_only() {
        let cache = ResultCache::new(4);
        get_or_compute(&cache, CacheKey(1), || "a".to_string());
        let pending = match cache.begin(CacheKey(2)) {
            Begin::Lead(g) => g,
            _ => panic!("lead"),
        };
        cache.clear();
        assert!(cache.is_empty());
        // The in-flight computation still publishes to its waiters, and
        // its result — computed after the clear, hence fresh — is cached.
        pending.fulfill("b".into());
        match cache.begin(CacheKey(2)) {
            Begin::Hit(v) => assert_eq!(&*v, "b"),
            _ => panic!("fresh in-flight result must be retained"),
        }
    }
}
