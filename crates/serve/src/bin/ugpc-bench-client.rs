//! `ugpc-bench-client` — load generator and latency harness for
//! `ugpc-serve`.
//!
//! Three modes:
//!
//! - **Thread mode** (default): `T` blocking client threads fire `N`
//!   requests, cycling over `K` distinct configurations — the seed
//!   smoke-load shape, kept for CI compatibility.
//! - **Harness mode** (`--connections C`): a single-threaded,
//!   event-driven load harness multiplexing `C` pipelined connections
//!   over the serve crate's own poller. Closed-loop by default (each
//!   connection keeps `--pipeline D` requests in flight); open-loop
//!   with `--open-rate R` (requests scheduled at `R`/s across all
//!   connections, latency measured from the *scheduled* arrival so
//!   queueing delay is not hidden). `--batch B` submits `batch` lines
//!   of `B` configs instead of individual `run` lines. Reports
//!   throughput and p50/p99/p999 latency.
//! - **Suite mode** (`--suite`): spawns in-process servers and runs the
//!   comparison matrix — event-loop pipelined, event-loop batched,
//!   seed blocking baseline, and an open-loop latency probe — writing
//!   `BENCH_serve.json` (see `--json`).
//!
//! ```text
//! ugpc-bench-client [--addr HOST:PORT | --spawn] [--requests N] [--threads T]
//!                   [--unique K] [--scale S] [--require-hits]
//!                   [--connections C] [--pipeline D] [--batch B]
//!                   [--open-rate R] [--server-mode eventloop|blocking]
//!                   [--suite] [--json PATH] [--introspect PATH]
//! ```
//!
//! The harness primes the cache (one warm-up run per unique config)
//! before the timed phase, so the measured path is the cache-hit path —
//! the serving-layer overhead itself, not simulation time. Exits
//! nonzero if any request ultimately failed — or, under
//! `--require-hits`, if the server's cache hit rate stayed at zero.
//!
//! `--introspect PATH` drains the server's flight recorder right after
//! the load (an `Introspect` request on a fresh connection) and writes
//! the report — worst-K span trees, last-N spans, per-phase p50/p99
//! decomposition — as pretty JSON to PATH; CI uploads it as the
//! tail-latency attribution artifact. Applies to harness mode and to
//! the event-loop leg of `--suite`.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use ugpc_core::RunConfig;
use ugpc_hwsim::{OpKind, PlatformId, Precision};
use ugpc_runtime::SchedPolicy;
use ugpc_serve::net::{Interest, Poller};
use ugpc_serve::protocol::encode;
use ugpc_serve::{
    error_code, Client, ClientError, IntrospectRequest, Request, Response, RunRequest,
    ServeOptions, Server, ServerMode,
};

struct Args {
    addr: Option<String>,
    spawn: bool,
    requests: Option<usize>,
    threads: usize,
    unique: usize,
    scale: usize,
    require_hits: bool,
    connections: usize,
    pipeline: usize,
    batch: usize,
    open_rate: f64,
    server_mode: ServerMode,
    suite: bool,
    json: Option<String>,
    introspect: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        spawn: false,
        requests: None,
        threads: 4,
        unique: 4,
        scale: 8,
        require_hits: false,
        connections: 0,
        pipeline: 1,
        batch: 0,
        open_rate: 0.0,
        server_mode: ServerMode::EventLoop,
        suite: false,
        json: None,
        introspect: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next().ok_or(format!("{name} needs a value"))
        };
        match a.as_str() {
            "--addr" => args.addr = Some(val("--addr")?),
            "--spawn" => args.spawn = true,
            "--requests" => args.requests = Some(parse_num(&val("--requests")?, "--requests")?),
            "--threads" => args.threads = parse_num(&val("--threads")?, "--threads")?.max(1),
            "--unique" => args.unique = parse_num(&val("--unique")?, "--unique")?.max(1),
            "--scale" => args.scale = parse_num(&val("--scale")?, "--scale")?.max(1),
            "--require-hits" => args.require_hits = true,
            "--connections" => {
                args.connections = parse_num(&val("--connections")?, "--connections")?;
            }
            "--pipeline" => args.pipeline = parse_num(&val("--pipeline")?, "--pipeline")?.max(1),
            "--batch" => args.batch = parse_num(&val("--batch")?, "--batch")?,
            "--open-rate" => {
                args.open_rate = val("--open-rate")?
                    .parse::<f64>()
                    .map_err(|e| format!("bad --open-rate: {e}"))?;
            }
            "--server-mode" => {
                args.server_mode = match val("--server-mode")?.as_str() {
                    "eventloop" => ServerMode::EventLoop,
                    "blocking" => ServerMode::Blocking,
                    other => return Err(format!("unknown server mode {other:?}")),
                };
            }
            "--suite" => args.suite = true,
            "--json" => args.json = Some(val("--json")?),
            "--introspect" => args.introspect = Some(val("--introspect")?),
            "--help" | "-h" => {
                println!(
                    "usage: ugpc-bench-client [--addr HOST:PORT | --spawn] [--requests N] \
                     [--threads T] [--unique K] [--scale S] [--require-hits] \
                     [--connections C] [--pipeline D] [--batch B] [--open-rate R] \
                     [--server-mode eventloop|blocking] [--suite] [--json PATH] \
                     [--introspect PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.addr.is_none() && !args.spawn && !args.suite {
        return Err("need --addr, --spawn, or --suite".into());
    }
    Ok(args)
}

fn parse_num(s: &str, name: &str) -> Result<usize, String> {
    s.parse::<usize>().map_err(|e| format!("bad {name}: {e}"))
}

/// The K distinct configurations the load cycles over: the small GEMM
/// study under K different schedulers/seeds, so each has its own cache
/// key but all are cheap.
fn config(index: usize, scale: usize) -> RunConfig {
    let base =
        RunConfig::paper(PlatformId::Amd4A100, OpKind::Gemm, Precision::Double).scaled_down(scale);
    match index {
        0 => base,
        1 => base.with_scheduler(SchedPolicy::Dmda),
        2 => base.with_gpu_config("BBBB".parse().expect("valid config")),
        k => base.with_scheduler(SchedPolicy::Random { seed: k as u64 }),
    }
}

// ---------------------------------------------------------------------
// Harness mode: single-threaded event-driven load over C connections.

struct LoadSpec {
    label: String,
    connections: usize,
    pipeline: usize,
    /// 0 or 1 = individual `run` lines; >1 = `batch` lines of this size.
    batch: usize,
    requests: usize,
    unique: usize,
    scale: usize,
    /// 0 = closed loop; >0 = open loop at this many requests/second.
    open_rate: f64,
}

struct LoadResult {
    label: String,
    server_mode: &'static str,
    loop_kind: &'static str,
    connections: usize,
    pipeline: usize,
    batch: usize,
    requests: u64,
    wall_s: f64,
    throughput_rps: f64,
    mean_us: f64,
    p50_us: u64,
    p99_us: u64,
    p999_us: u64,
    max_us: u64,
    errors: u64,
    cache_hit_rate: f64,
    simulations: u64,
}

impl LoadResult {
    fn to_json(&self) -> String {
        format!(
            "{{\"label\": {:?}, \"server_mode\": {:?}, \"loop\": {:?}, \
             \"connections\": {}, \"pipeline\": {}, \"batch\": {}, \"requests\": {}, \
             \"wall_s\": {:.4}, \"throughput_rps\": {:.1}, \"mean_us\": {:.2}, \
             \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}, \"max_us\": {}, \
             \"errors\": {}, \"cache_hit_rate\": {:.4}, \"simulations\": {}}}",
            self.label,
            self.server_mode,
            self.loop_kind,
            self.connections,
            self.pipeline,
            self.batch,
            self.requests,
            self.wall_s,
            self.throughput_rps,
            self.mean_us,
            self.p50_us,
            self.p99_us,
            self.p999_us,
            self.max_us,
            self.errors,
            self.cache_hit_rate,
            self.simulations,
        )
    }
}

struct BConn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// Send (closed loop) or scheduled-arrival (open loop) timestamp per
    /// outstanding reply slot, in reply order.
    inflight: VecDeque<Instant>,
    sent: usize,
    quota: usize,
    next_key: usize,
    interest: Interest,
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Enqueue one send unit (a `run` line or a `batch` line) on `conn` with
/// the given latency-clock start time.
fn enqueue_unit(conn: &mut BConn, lines: &[Vec<u8>], batch: usize, t: Instant) {
    let line = &lines[conn.next_key % lines.len()];
    conn.next_key += 1;
    conn.wbuf.extend_from_slice(line);
    let slots = batch.max(1);
    for _ in 0..slots {
        conn.inflight.push_back(t);
    }
    conn.sent += slots;
}

fn flush_conn(poller: &Poller, conn: &mut BConn, token: u64) -> Result<(), String> {
    while !conn.wbuf.is_empty() {
        match conn.stream.write(&conn.wbuf) {
            Ok(0) => return Err("server closed the connection".into()),
            Ok(n) => {
                conn.wbuf.drain(..n);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(format!("write: {e}")),
        }
    }
    let want = if conn.wbuf.is_empty() {
        Interest::Read
    } else {
        Interest::ReadWrite
    };
    if want != conn.interest {
        poller
            .rearm(conn.stream.as_raw_fd(), token, want)
            .map_err(|e| format!("rearm: {e}"))?;
        conn.interest = want;
    }
    Ok(())
}

/// Run one load phase against a serving `addr`. Single-threaded: all
/// connections are multiplexed over one poller, which easily saturates
/// the (local) server on the cache-hit path.
fn run_load(addr: &str, spec: &LoadSpec, server_mode: &'static str) -> Result<LoadResult, String> {
    // Prime the cache so the timed phase measures the serving layer, not
    // the simulator.
    let mut prime = Client::connect(addr).map_err(|e| format!("prime connect: {e}"))?;
    for k in 0..spec.unique {
        prime
            .run(config(k, spec.scale))
            .map_err(|e| format!("prime run {k}: {e}"))?;
    }
    drop(prime);

    // Pre-encode the request lines the load cycles over.
    let batch = if spec.batch > 1 { spec.batch } else { 0 };
    let lines: Vec<Vec<u8>> = (0..spec.unique)
        .map(|k| {
            let mut bytes = if batch > 0 {
                let runs: Vec<RunRequest> = (0..batch)
                    .map(|j| RunRequest::new(config((k + j) % spec.unique, spec.scale)))
                    .collect();
                encode(&Request::Batch(runs)).into_bytes()
            } else {
                encode(&Request::Run(RunRequest::new(config(k, spec.scale)))).into_bytes()
            };
            bytes.push(b'\n');
            bytes
        })
        .collect();
    // Reply lines that carry a structured error start with this prefix
    // (cheaper than decoding every reply at 6-figure rates).
    let error_prefix: Vec<u8> = {
        let sample = encode(&Response::Error(ugpc_serve::ErrorReply::new(
            error_code::INTERNAL,
            "",
        )));
        sample.as_bytes()[..sample.len().min(9)].to_vec()
    };

    let unit = batch.max(1);
    let conn_count = spec.connections.max(1);
    let poller = Poller::new().map_err(|e| format!("poller: {e}"))?;
    let mut conns: Vec<BConn> = Vec::with_capacity(conn_count);
    for i in 0..conn_count {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {i}: {e}"))?;
        stream
            .set_nodelay(true)
            .map_err(|e| format!("nodelay: {e}"))?;
        stream
            .set_nonblocking(true)
            .map_err(|e| format!("nonblocking: {e}"))?;
        poller
            .register(stream.as_raw_fd(), i as u64, Interest::Read)
            .map_err(|e| format!("register: {e}"))?;
        conns.push(BConn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            inflight: VecDeque::new(),
            sent: 0,
            quota: 0,
            next_key: i,
            interest: Interest::Read,
        });
    }

    // Distribute the request quota in whole send units.
    let units_total = spec.requests.div_ceil(unit).max(1);
    for (i, conn) in conns.iter_mut().enumerate() {
        let units = units_total / conn_count + usize::from(i < units_total % conn_count);
        conn.quota = units * unit;
    }
    let total: usize = conns.iter().map(|c| c.quota).sum();

    let open = spec.open_rate > 0.0;
    let interval = if open {
        Duration::from_secs_f64(1.0 / spec.open_rate)
    } else {
        Duration::ZERO
    };

    let t0 = Instant::now();
    let deadline = t0 + Duration::from_secs(300);
    if !open {
        // Closed loop: fill every pipeline.
        for (i, conn) in conns.iter_mut().enumerate() {
            while conn.sent < conn.quota && conn.inflight.len() < spec.pipeline.max(unit) {
                enqueue_unit(conn, &lines, batch, Instant::now());
            }
            flush_conn(&poller, conn, i as u64)?;
        }
    }

    let mut latencies: Vec<u64> = Vec::with_capacity(total);
    let mut errors = 0u64;
    let mut received = 0usize;
    let mut next_arrival = t0;
    let mut rr = 0usize;
    let mut events = Vec::new();
    while received < total {
        let now = Instant::now();
        if now > deadline {
            return Err(format!(
                "deadline exceeded: {received}/{total} replies after {:?}",
                now - t0
            ));
        }
        if open {
            // Fire every arrival that is due, round-robin across
            // connections; the latency clock starts at the *scheduled*
            // time so server-side queueing is visible.
            while next_arrival <= now {
                let sent: usize = conns.iter().map(|c| c.sent).sum();
                if sent >= total {
                    break;
                }
                for _ in 0..conn_count {
                    let i = rr % conn_count;
                    rr += 1;
                    if conns[i].sent < conns[i].quota {
                        enqueue_unit(&mut conns[i], &lines, batch, next_arrival);
                        flush_conn(&poller, &mut conns[i], i as u64)?;
                        break;
                    }
                }
                next_arrival += interval.max(Duration::from_nanos(1));
            }
        }
        let timeout_ms = if open {
            let until = next_arrival.saturating_duration_since(Instant::now());
            (until.as_millis() as i32).clamp(0, 20)
        } else {
            200
        };
        events.clear();
        poller
            .wait(&mut events, timeout_ms)
            .map_err(|e| format!("poll: {e}"))?;
        for ev in &events {
            let Some(conn) = conns.get_mut(ev.token as usize) else {
                continue;
            };
            if ev.readable {
                let mut buf = [0u8; 64 * 1024];
                loop {
                    match conn.stream.read(&mut buf) {
                        Ok(0) => return Err("server closed a connection mid-load".into()),
                        Ok(n) => conn.rbuf.extend_from_slice(&buf[..n]),
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(e) => return Err(format!("read: {e}")),
                    }
                }
                let mut start = 0usize;
                let reply_at = Instant::now();
                while let Some(nl) = conn.rbuf[start..].iter().position(|&b| b == b'\n') {
                    let end = start + nl;
                    let line = &conn.rbuf[start..end];
                    if line.starts_with(&error_prefix) {
                        errors += 1;
                    }
                    if let Some(sent_at) = conn.inflight.pop_front() {
                        latencies
                            .push(reply_at.saturating_duration_since(sent_at).as_micros() as u64);
                    }
                    received += 1;
                    start = end + 1;
                }
                conn.rbuf.drain(..start);
                if !open {
                    while conn.sent < conn.quota && conn.inflight.len() < spec.pipeline.max(unit) {
                        enqueue_unit(conn, &lines, batch, Instant::now());
                    }
                }
            }
            flush_conn(&poller, conn, ev.token)?;
        }
    }
    let wall = t0.elapsed();

    let stats = Client::connect(addr)
        .and_then(|mut c| c.stats())
        .map_err(|e| format!("final stats: {e}"))?;
    latencies.sort_unstable();
    let mean_us = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
    };
    Ok(LoadResult {
        label: spec.label.clone(),
        server_mode,
        loop_kind: if open { "open" } else { "closed" },
        connections: conn_count,
        pipeline: spec.pipeline,
        batch,
        requests: total as u64,
        wall_s: wall.as_secs_f64(),
        throughput_rps: total as f64 / wall.as_secs_f64().max(1e-9),
        mean_us,
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        p999_us: percentile(&latencies, 0.999),
        max_us: latencies.last().copied().unwrap_or(0),
        errors,
        cache_hit_rate: stats.cache.hit_rate,
        simulations: stats.simulations_executed,
    })
}

fn write_json(path: &str, content: &str) -> Result<(), String> {
    if let Some(parent) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(parent).map_err(|e| format!("mkdir {parent:?}: {e}"))?;
    }
    std::fs::write(path, content).map_err(|e| format!("write {path}: {e}"))
}

/// Drain the server's flight recorder and write the span-tree /
/// phase-decomposition report to `path`. Run right after a load phase,
/// while the worst offenders are still in the rings.
fn capture_introspect(addr: &str, path: &str) -> Result<(), String> {
    let report = Client::connect(addr)
        .and_then(|mut c| {
            c.introspect(IntrospectRequest {
                last: Some(32),
                worst: Some(8),
            })
        })
        .map_err(|e| format!("introspect: {e}"))?;
    if !report.enabled {
        eprintln!("[introspect] server has no flight recorder; writing empty report");
    } else if let Some(worst) = report.worst.first() {
        eprintln!(
            "[introspect] {} recorded; worst request {} µs (trace {})",
            report.recorded, worst.total_us, worst.trace
        );
    }
    let json = serde_json::to_string_pretty(&report).map_err(|e| format!("serialize: {e}"))?;
    write_json(path, &json)?;
    eprintln!("[introspect] wrote {path}");
    Ok(())
}

/// The comparison suite behind `results/bench/BENCH_serve.json`.
fn run_suite(args: &Args) -> Result<(String, u64), String> {
    let n = args.requests.unwrap_or(100_000);
    let connections = if args.connections > 0 {
        args.connections
    } else {
        1024
    };
    let pipeline = if args.pipeline > 1 { args.pipeline } else { 8 };
    let batch = if args.batch > 1 { args.batch } else { 16 };
    let mut results: Vec<LoadResult> = Vec::new();

    // Event-loop server: pipelined, batched, then an open-loop probe.
    // Suite servers log nowhere — at suite request rates the per-request
    // log lines would dominate the measurement.
    let server = Server::bind_with_logger(
        "127.0.0.1:0",
        ServeOptions {
            mode: ServerMode::EventLoop,
            ..ServeOptions::default()
        },
        ugpc_telemetry::Logger::disabled(),
    )
    .map_err(|e| format!("bind eventloop: {e}"))?;
    let handle = server.spawn();
    let addr = handle.addr().to_string();
    results.push(run_load(
        &addr,
        &LoadSpec {
            label: format!("eventloop/c{connections}/d{pipeline}"),
            connections,
            pipeline,
            batch: 0,
            requests: n,
            unique: args.unique,
            scale: args.scale,
            open_rate: 0.0,
        },
        "eventloop",
    )?);
    results.push(run_load(
        &addr,
        &LoadSpec {
            label: format!("eventloop/c{connections}/b{batch}"),
            connections,
            pipeline: pipeline.max(batch),
            batch,
            requests: n,
            unique: args.unique,
            scale: args.scale,
            open_rate: 0.0,
        },
        "eventloop",
    )?);
    let closed_rps = results[0].throughput_rps;
    results.push(run_load(
        &addr,
        &LoadSpec {
            label: format!("eventloop/c{connections}/open"),
            connections,
            pipeline,
            batch: 0,
            requests: (n / 5).max(1000),
            unique: args.unique,
            scale: args.scale,
            // Below the closed-loop ceiling, so the probe measures
            // latency at a sustainable arrival rate rather than queue
            // growth at saturation.
            open_rate: (closed_rps * 0.25).max(100.0),
        },
        "eventloop",
    )?);
    // Drain the flight recorder while the load's span records are still
    // in the rings — the tail-latency attribution artifact.
    if let Some(path) = &args.introspect {
        capture_introspect(&addr, path)?;
    }
    handle.stop();

    // Seed blocking baseline: thread-per-connection, depth-1 turns (the
    // seed client had no pipelining). Measured twice: at its own sweet
    // spot (64 connections) and at the headline concurrency, which is
    // what the speedup headline compares against — same offered
    // concurrency, seed architecture vs event loop.
    let server = Server::bind_with_logger(
        "127.0.0.1:0",
        ServeOptions {
            mode: ServerMode::Blocking,
            ..ServeOptions::default()
        },
        ugpc_telemetry::Logger::disabled(),
    )
    .map_err(|e| format!("bind blocking: {e}"))?;
    let handle = server.spawn();
    let addr = handle.addr().to_string();
    results.push(run_load(
        &addr,
        &LoadSpec {
            label: "blocking/c64/d1".to_string(),
            connections: 64.min(connections),
            pipeline: 1,
            batch: 0,
            requests: (n / 10).max(1000),
            unique: args.unique,
            scale: args.scale,
            open_rate: 0.0,
        },
        "blocking",
    )?);
    results.push(run_load(
        &addr,
        &LoadSpec {
            label: format!("blocking/c{connections}/d1"),
            connections,
            pipeline: 1,
            batch: 0,
            requests: (n / 10).max(1000),
            unique: args.unique,
            scale: args.scale,
            open_rate: 0.0,
        },
        "blocking",
    )?);
    handle.stop();

    let blocking_rps = results
        .last()
        .map(|r| r.throughput_rps)
        .unwrap_or(f64::INFINITY);
    let speedup = closed_rps / blocking_rps.max(1e-9);
    let errors: u64 = results.iter().map(|r| r.errors).sum();
    let body: Vec<String> = results
        .iter()
        .map(|r| format!("    {}", r.to_json()))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"results\": [\n{}\n  ],\n  \"speedup_vs_blocking\": {:.2}\n}}\n",
        body.join(",\n"),
        speedup
    );
    Ok((json, errors))
}

// ---------------------------------------------------------------------
// Thread mode (the seed smoke-load shape).

fn run_one(client: &mut Client, cfg: &RunConfig, retries: &AtomicU64) -> Result<(), ClientError> {
    // Bounded retry loop on backpressure; anything else is final.
    for _ in 0..50 {
        match client.run(cfg.clone()) {
            Ok(_) => return Ok(()),
            Err(ClientError::Server(e)) if e.code == error_code::BACKPRESSURE => {
                retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(e.retry_after_ms.unwrap_or(25)));
            }
            Err(e) => return Err(e),
        }
    }
    Err(ClientError::Server(ugpc_serve::ErrorReply::new(
        error_code::BACKPRESSURE,
        "still backpressured after 50 retries",
    )))
}

fn run_thread_mode(args: &Args, addr: &str) -> (u64, u64, u64, Duration) {
    let requests = args.requests.unwrap_or(64);
    let ok = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let retries = AtomicU64::new(0);
    let t0 = Instant::now();
    let per_thread = requests.div_ceil(args.threads);
    std::thread::scope(|s| {
        for t in 0..args.threads {
            let (ok, failed, retries) = (&ok, &failed, &retries);
            let (unique, scale) = (args.unique, args.scale);
            s.spawn(move || {
                let mut client = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("[thread {t}] connect: {e}");
                        failed.fetch_add(per_thread as u64, Ordering::Relaxed);
                        return;
                    }
                };
                for i in 0..per_thread {
                    let cfg = config((t + i) % unique, scale);
                    match run_one(&mut client, &cfg, retries) {
                        Ok(()) => {
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            eprintln!("[thread {t}] request {i}: {e}");
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    (
        ok.load(Ordering::Relaxed),
        failed.load(Ordering::Relaxed),
        retries.load(Ordering::Relaxed),
        t0.elapsed(),
    )
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if args.suite {
        match run_suite(&args) {
            Ok((json, errors)) => {
                print!("{json}");
                if let Some(path) = &args.json {
                    if let Err(e) = write_json(path, &json) {
                        eprintln!("error: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                if errors > 0 {
                    eprintln!("error: {errors} error replies during the suite");
                    return ExitCode::FAILURE;
                }
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let spawned = if args.spawn {
        let server = match Server::bind(
            "127.0.0.1:0",
            ServeOptions {
                mode: args.server_mode,
                ..ServeOptions::default()
            },
        ) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: bind: {e}");
                return ExitCode::FAILURE;
            }
        };
        Some(server.spawn())
    } else {
        None
    };
    let addr = spawned
        .as_ref()
        .map(|h| h.addr().to_string())
        .or(args.addr.clone())
        .expect("validated in parse_args");

    if args.connections > 0 {
        // Harness mode.
        let mode_label = match args.server_mode {
            ServerMode::EventLoop => "eventloop",
            ServerMode::Blocking => "blocking",
        };
        let spec = LoadSpec {
            label: format!("{mode_label}/c{}/d{}", args.connections, args.pipeline),
            connections: args.connections,
            pipeline: args.pipeline,
            batch: args.batch,
            requests: args.requests.unwrap_or(10_000),
            unique: args.unique,
            scale: args.scale,
            open_rate: args.open_rate,
        };
        let result = match run_load(&addr, &spec, mode_label) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                if let Some(handle) = spawned {
                    handle.stop();
                }
                return ExitCode::FAILURE;
            }
        };
        if let Some(path) = &args.introspect {
            if let Err(e) = capture_introspect(&addr, path) {
                eprintln!("error: {e}");
                if let Some(handle) = spawned {
                    handle.stop();
                }
                return ExitCode::FAILURE;
            }
        }
        if let Some(handle) = spawned {
            handle.stop();
        }
        let json = result.to_json();
        println!("{json}");
        if let Some(path) = &args.json {
            if let Err(e) = write_json(path, &format!("{json}\n")) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        if result.errors > 0 {
            eprintln!("error: {} error replies", result.errors);
            return ExitCode::FAILURE;
        }
        if args.require_hits && result.cache_hit_rate <= 0.0 {
            eprintln!("error: cache hit rate stayed at zero");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }

    // Thread mode.
    let (ok, failed, retries, wall) = run_thread_mode(&args, &addr);
    let stats = Client::connect(&addr).and_then(|mut c| c.stats());
    let (hit_rate, sims) = match &stats {
        Ok(s) => (s.cache.hit_rate, s.simulations_executed),
        Err(e) => {
            eprintln!("error: final stats fetch: {e}");
            (0.0, 0)
        }
    };
    if let Some(handle) = spawned {
        handle.stop();
    }
    println!(
        "{{\"requests\": {}, \"ok\": {ok}, \"failed\": {failed}, \"backpressure_retries\": {retries}, \
         \"wall_s\": {:.3}, \"throughput_rps\": {:.1}, \"cache_hit_rate\": {hit_rate:.4}, \
         \"simulations_executed\": {sims}}}",
        args.requests.unwrap_or(64),
        wall.as_secs_f64(),
        ok as f64 / wall.as_secs_f64().max(1e-9),
    );
    if failed > 0 || stats.is_err() {
        eprintln!("error: {failed} requests failed");
        return ExitCode::FAILURE;
    }
    if args.require_hits && hit_rate <= 0.0 {
        eprintln!("error: cache hit rate stayed at zero over {ok} requests");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
