//! `ugpc-bench-client` — load generator for `ugpc-serve`.
//!
//! ```text
//! ugpc-bench-client [--addr HOST:PORT | --spawn] [--requests N] [--threads T]
//!                   [--unique K] [--scale S] [--require-hits]
//! ```
//!
//! Fires `N` run requests from `T` client threads, cycling over `K`
//! distinct configurations (so identical requests exercise the cache and
//! the single-flight path). `--spawn` starts an in-process server on an
//! ephemeral port instead of connecting to `--addr` — that is what the
//! CI smoke leg uses. Backpressure errors are retried after the server's
//! `retry_after_ms` hint (and counted); any other error is fatal.
//!
//! Prints a JSON summary and exits nonzero if any request ultimately
//! failed — or, under `--require-hits`, if the server's cache hit rate
//! stayed at zero.

use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use ugpc_core::RunConfig;
use ugpc_hwsim::{OpKind, PlatformId, Precision};
use ugpc_runtime::SchedPolicy;
use ugpc_serve::{error_code, Client, ClientError, ServeOptions, Server};

struct Args {
    addr: Option<String>,
    spawn: bool,
    requests: usize,
    threads: usize,
    unique: usize,
    scale: usize,
    require_hits: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: None,
        spawn: false,
        requests: 64,
        threads: 4,
        unique: 4,
        scale: 8,
        require_hits: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut num = |name: &str| -> Result<usize, String> {
            it.next()
                .ok_or(format!("{name} needs a value"))?
                .parse::<usize>()
                .map_err(|e| format!("bad {name}: {e}"))
        };
        match a.as_str() {
            "--addr" => args.addr = Some(it.next().ok_or("--addr needs a value")?),
            "--spawn" => args.spawn = true,
            "--requests" => args.requests = num("--requests")?.max(1),
            "--threads" => args.threads = num("--threads")?.max(1),
            "--unique" => args.unique = num("--unique")?.max(1),
            "--scale" => args.scale = num("--scale")?.max(1),
            "--require-hits" => args.require_hits = true,
            "--help" | "-h" => {
                println!(
                    "usage: ugpc-bench-client [--addr HOST:PORT | --spawn] [--requests N] \
                     [--threads T] [--unique K] [--scale S] [--require-hits]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.addr.is_none() && !args.spawn {
        return Err("need --addr or --spawn".into());
    }
    Ok(args)
}

/// The K distinct configurations the load cycles over: the small GEMM
/// study under K different schedulers/seeds, so each has its own cache
/// key but all are cheap.
fn config(index: usize, scale: usize) -> RunConfig {
    let base =
        RunConfig::paper(PlatformId::Amd4A100, OpKind::Gemm, Precision::Double).scaled_down(scale);
    match index {
        0 => base,
        1 => base.with_scheduler(SchedPolicy::Dmda),
        2 => base.with_gpu_config("BBBB".parse().expect("valid config")),
        k => base.with_scheduler(SchedPolicy::Random { seed: k as u64 }),
    }
}

fn run_one(client: &mut Client, cfg: &RunConfig, retries: &AtomicU64) -> Result<(), ClientError> {
    // Bounded retry loop on backpressure; anything else is final.
    for _ in 0..50 {
        match client.run(cfg.clone()) {
            Ok(_) => return Ok(()),
            Err(ClientError::Server(e)) if e.code == error_code::BACKPRESSURE => {
                retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(e.retry_after_ms.unwrap_or(25)));
            }
            Err(e) => return Err(e),
        }
    }
    Err(ClientError::Server(ugpc_serve::ErrorReply::new(
        error_code::BACKPRESSURE,
        "still backpressured after 50 retries",
    )))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let spawned = if args.spawn {
        let server = match Server::bind("127.0.0.1:0", ServeOptions::default()) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: bind: {e}");
                return ExitCode::FAILURE;
            }
        };
        Some(server.spawn())
    } else {
        None
    };
    let addr = spawned
        .as_ref()
        .map(|h| h.addr().to_string())
        .or(args.addr.clone())
        .expect("validated in parse_args");

    let ok = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let retries = AtomicU64::new(0);
    let t0 = Instant::now();
    let per_thread = args.requests.div_ceil(args.threads);
    std::thread::scope(|s| {
        for t in 0..args.threads {
            let (addr, ok, failed, retries) = (&addr, &ok, &failed, &retries);
            let (unique, scale) = (args.unique, args.scale);
            s.spawn(move || {
                let mut client = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("[thread {t}] connect: {e}");
                        failed.fetch_add(per_thread as u64, Ordering::Relaxed);
                        return;
                    }
                };
                for i in 0..per_thread {
                    let cfg = config((t + i) % unique, scale);
                    match run_one(&mut client, &cfg, retries) {
                        Ok(()) => {
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            eprintln!("[thread {t}] request {i}: {e}");
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let wall = t0.elapsed();

    let stats = Client::connect(&addr).and_then(|mut c| c.stats());
    let (hit_rate, sims) = match &stats {
        Ok(s) => (s.cache.hit_rate, s.simulations_executed),
        Err(e) => {
            eprintln!("error: final stats fetch: {e}");
            (0.0, 0)
        }
    };

    if let Some(handle) = spawned {
        handle.stop();
    }

    let ok = ok.load(Ordering::Relaxed);
    let failed = failed.load(Ordering::Relaxed);
    let retries = retries.load(Ordering::Relaxed);
    println!(
        "{{\"requests\": {}, \"ok\": {ok}, \"failed\": {failed}, \"backpressure_retries\": {retries}, \
         \"wall_s\": {:.3}, \"throughput_rps\": {:.1}, \"cache_hit_rate\": {hit_rate:.4}, \
         \"simulations_executed\": {sims}}}",
        args.requests,
        wall.as_secs_f64(),
        ok as f64 / wall.as_secs_f64().max(1e-9),
    );

    if failed > 0 || stats.is_err() {
        eprintln!("error: {failed} requests failed");
        return ExitCode::FAILURE;
    }
    if args.require_hits && hit_rate <= 0.0 {
        eprintln!("error: cache hit rate stayed at zero over {ok} requests");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
