//! Transition-labeling tests: tie the *real* `ResultCache` single-flight
//! and `WorkerPool` backpressure implementations to their abstract
//! models in `ugpc_analysis::model`.
//!
//! Each test drives the real implementation through a concrete schedule,
//! asserting at every step that the implementation does what the
//! corresponding model transition says (leader election, coalescing,
//! hit-after-publish, rejection at capacity, drain-before-stop). The
//! observed schedule is recorded as a model label trace and replayed
//! with `accepts_trace`: the run we just executed for real must be a
//! path of the verified state machine. A schedule the model rejects that
//! the implementation permits (or vice versa) fails here — which is what
//! keeps the model honest as the implementation evolves.
//!
//! The last test pins the `signal_stop` fix: the model's `buggy_signal`
//! variant (stop stored without the queue mutex) deadlocks in the
//! checker, and the real pool must survive the park/shutdown race the
//! checker's witness trace describes.

#![allow(clippy::unwrap_used)]

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;
use ugpc_analysis::model::backpressure::Backpressure;
use ugpc_analysis::model::singleflight::{ShardedSingleFlight, SingleFlight};
use ugpc_analysis::model::{accepts_trace, Checker};
use ugpc_core::CacheKey;
use ugpc_serve::cache::{Begin, ResultCache};
use ugpc_serve::pool::WorkerPool;

/// Unpack `begin` into the role the model names, failing loudly on a
/// protocol divergence.
macro_rules! expect_begin {
    ($cache:expr, $key:expr, $variant:path) => {
        match $cache.begin($key) {
            $variant(x) => x,
            _ => panic!(
                "real cache diverged from the model: expected {}",
                stringify!($variant)
            ),
        }
    };
}

#[test]
fn single_flight_success_run_is_a_model_path() {
    let cache = ResultCache::new(8);
    let key = CacheKey(0xfeed);
    let mut trace: Vec<&str> = Vec::new();

    // t0 arrives first: the model says Absent ⇒ lead.
    let guard = expect_begin!(cache, key, Begin::Lead);
    trace.push("t0:begin:lead");

    // t1 arrives while pending: Pending ⇒ wait handle, no second leader.
    let flight = expect_begin!(cache, key, Begin::Wait);
    trace.push("t1:begin:wait");

    // t0 publishes. The real `finish` is the model's two steps — the
    // map swap, then the slot resolve + notify — back to back.
    let payload: Arc<str> = Arc::from("{\"reply\":\"ok\"}");
    guard.fulfill(payload.clone());
    trace.push("t0:fulfill:map");
    trace.push("t0:publish");

    // t2 arrives late: Ready ⇒ hit, byte-identical to the leader's
    // payload (the no-reply-divergence invariant).
    let hit = expect_begin!(cache, key, Begin::Hit);
    trace.push("t2:begin:hit");
    assert_eq!(&*hit, &*payload, "hit diverged from the leader's reply");

    // t1's wait finds the slot resolved — no park needed.
    let waited = ResultCache::wait(&flight).expect("fulfilled flight");
    trace.push("t1:wait:resolved");
    assert_eq!(&*waited, &*payload, "waiter diverged from the leader");

    accepts_trace(&SingleFlight::correct(3), &trace)
        .unwrap_or_else(|i| panic!("model rejects the executed run at step {i}: {trace:?}"));
}

#[test]
fn single_flight_failure_run_is_a_model_path() {
    let cache = ResultCache::new(8);
    let key = CacheKey(0xdead);
    let mut trace: Vec<&str> = Vec::new();

    let guard = expect_begin!(cache, key, Begin::Lead);
    trace.push("t0:begin:lead");
    let flight = expect_begin!(cache, key, Begin::Wait);
    trace.push("t1:begin:wait");

    // The leader unwinds: dropping the guard fails the flight
    // (drop-propagated failure), returning the key to Absent.
    drop(guard);
    trace.push("t0:fail:map");
    trace.push("t0:publish");

    let err = ResultCache::wait(&flight).expect_err("failed flight must report an error");
    trace.push("t1:wait:resolved");
    assert!(err.contains("failed"), "unexpected error text: {err}");

    // Nothing was cached: the next requester must lead a *fresh* flight
    // (the model's generation bump), not hit or wait.
    let retry = expect_begin!(cache, key, Begin::Lead);
    trace.push("t2:begin:lead");
    drop(retry);

    accepts_trace(&SingleFlight::correct(3), &trace)
        .unwrap_or_else(|i| panic!("model rejects the executed run at step {i}: {trace:?}"));
}

/// The sharded cache against [`ShardedSingleFlight`]: keys 0 and 1 land
/// on shards 0 and 1 (low-bits selection), so two leaders legally run
/// *concurrently* — the one-key model rejects that trace, the sharded
/// model requires it — while each key individually keeps single-flight
/// (the waiter coalesces, the late requester hits, bytes identical).
#[test]
fn sharded_single_flight_run_is_a_model_path() {
    let cache = ResultCache::with_options(64, 2, None);
    assert_eq!(cache.shard_count(), 2, "64/32 = 2 shards");
    let k0 = CacheKey(0); // 0 & 1 == 0 → shard 0
    let k1 = CacheKey(1); // 1 & 1 == 1 → shard 1
    let mut trace: Vec<&str> = Vec::new();

    // t0 leads shard 0, t1 leads shard 1 — simultaneously. Per-shard
    // locks mean neither blocks the other.
    let g0 = expect_begin!(cache, k0, Begin::Lead);
    trace.push("t0.s0:begin:lead");
    let g1 = expect_begin!(cache, k1, Begin::Lead);
    trace.push("t1.s1:begin:lead");

    // t2 wants k0 while it is in flight: coalesces behind shard 0's
    // leader, untouched by shard 1's concurrent flight.
    let flight = expect_begin!(cache, k0, Begin::Wait);
    trace.push("t2.s0:begin:wait");

    let p0: Arc<str> = Arc::from("{\"reply\":\"shard0\"}");
    let p1: Arc<str> = Arc::from("{\"reply\":\"shard1\"}");
    g0.fulfill(p0.clone());
    trace.push("t0.s0:fulfill:map");
    trace.push("t0.s0:publish");
    g1.fulfill(p1.clone());
    trace.push("t1.s1:fulfill:map");
    trace.push("t1.s1:publish");

    let waited = ResultCache::wait(&flight).expect("fulfilled flight");
    trace.push("t2.s0:wait:resolved");
    assert_eq!(&*waited, &*p0, "waiter diverged from shard 0's leader");

    // t3 arrives late on shard 1: hit, byte-identical.
    let hit = expect_begin!(cache, k1, Begin::Hit);
    trace.push("t3.s1:begin:hit");
    assert_eq!(&*hit, &*p1, "hit diverged from shard 1's leader");

    let model = ShardedSingleFlight::correct(2, 4);
    accepts_trace(&model, &trace)
        .unwrap_or_else(|i| panic!("model rejects the executed run at step {i}: {trace:?}"));
    // The same concurrent-leaders prefix is *impossible* in the one-key
    // model — concurrency across shards is exactly what sharding adds.
    assert_eq!(
        accepts_trace(
            &SingleFlight::correct(4),
            &["t0:begin:lead", "t1:begin:lead"]
        ),
        Err(1)
    );
}

#[test]
fn pool_backpressure_run_is_a_model_path() {
    let pool = WorkerPool::new(1, 1);
    // Let the worker reach its park (empty queue, no stop).
    std::thread::sleep(Duration::from_millis(30));
    let mut trace: Vec<&str> = Vec::new();
    trace.push("w0:park");

    // c0 submits the gate job; the notify wakes the parked worker,
    // which dequeues and blocks inside the job (Executing).
    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    let (running_tx, running_rx) = mpsc::channel::<()>();
    pool.try_submit(Box::new(move || {
        running_tx.send(()).unwrap();
        let _ = gate_rx.recv_timeout(Duration::from_secs(10));
    }))
    .expect("c0 fits an empty queue");
    trace.push("c0:push");
    trace.push("c0:notify>w0");
    running_rx
        .recv_timeout(Duration::from_secs(5))
        .expect("worker dequeued the gate job");
    trace.push("w0:dequeue");
    assert_eq!(pool.queue_depth(), 0, "executing job must leave the queue");

    // c1 fills the single queue slot while the worker is busy.
    let (done_tx, done_rx) = mpsc::channel::<()>();
    pool.try_submit(Box::new(move || done_tx.send(()).unwrap()))
        .expect("c1 fits the empty slot");
    trace.push("c1:push");
    trace.push("c1:notify:none");
    assert_eq!(pool.queue_depth(), 1);

    // c2 bounces off the bound — the model's reject transition is the
    // only one enabled for it.
    assert!(
        pool.try_submit(Box::new(|| ())).is_err(),
        "queue full must reject"
    );
    trace.push("c2:reject");
    assert_eq!(pool.rejected(), 1);

    // Release the gate: the worker finishes c0's job, drains c1's.
    gate_tx.send(()).unwrap();
    trace.push("w0:finish");
    done_rx
        .recv_timeout(Duration::from_secs(5))
        .expect("queued job drained");
    trace.push("w0:dequeue");
    trace.push("w0:finish");

    pool.shutdown();
    trace.push("shutdown");
    trace.push("w0:exit");

    accepts_trace(&Backpressure::correct(3, 1, 1), &trace)
        .unwrap_or_else(|i| panic!("model rejects the executed run at step {i}: {trace:?}"));
}

/// The checker proves the lock-free stop store loses the shutdown
/// wakeup (worker parks forever ⇒ deadlock), and that the shipped
/// protocol — store under the queue mutex — verifies exhaustively.
#[test]
fn model_separates_fixed_from_buggy_shutdown() {
    let fixed = Checker::default().run(&Backpressure::correct(2, 2, 1));
    assert!(
        fixed.verified(),
        "fixed protocol violated: {:?}",
        fixed.violation
    );

    let buggy = Checker::default().run(&Backpressure {
        clients: 1,
        workers: 1,
        capacity: 1,
        buggy_signal: true,
    });
    let v = buggy.violation.expect("buggy signal must deadlock");
    assert!(v.message.contains("deadlock"), "{}", v.message);
    assert!(
        v.trace.join(" ").contains("decide-park"),
        "witness should show the race window"
    );
}

/// Pin the `signal_stop` fix against the race its model found: shutdown
/// raced against workers heading into their park must always terminate.
/// With the store outside the queue mutex this loop eventually hangs a
/// worker (the checker's witness interleaving); the watchdog turns that
/// hang into a failure instead of a stuck CI job.
#[test]
fn shutdown_never_loses_the_stop_wakeup() {
    for round in 0..50 {
        let pool = WorkerPool::new(2, 4);
        if round % 2 == 0 {
            // Half the rounds give workers time to park; the other half
            // race shutdown straight against their first queue check.
            std::thread::sleep(Duration::from_millis(2));
        }
        let (done_tx, done_rx) = mpsc::channel::<()>();
        std::thread::spawn(move || {
            pool.shutdown();
            let _ = done_tx.send(());
        });
        done_rx
            .recv_timeout(Duration::from_secs(10))
            .unwrap_or_else(|_| panic!("shutdown hung on round {round}: lost stop wakeup"));
    }
}
