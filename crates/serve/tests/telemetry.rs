//! The telemetry smoke suite (the CI `telemetry-smoke` leg): boot a real
//! TCP server, drive one run plus a `Metrics` scrape through a client,
//! and assert the whole observability surface holds together —
//!
//! - the Prometheus text exposition parses and is internally consistent
//!   (cumulative histogram buckets, `+Inf` == `_count`),
//! - counters are monotone across scrapes,
//! - a client-supplied `trace_id` round-trips into both the server's
//!   JSON log lines and the exported Perfetto trace,
//! - the `StatsReport` and the registry report the same numbers.

// Test helpers may unwrap (clippy's allow-unwrap-in-tests does not
// reach helper fns in integration-test files).
#![allow(clippy::unwrap_used)]

use std::collections::HashMap;
use ugpc_core::RunConfig;
use ugpc_hwsim::{OpKind, PlatformId, Precision};
use ugpc_serve::{Client, Level, Logger, ServeOptions, Server, TraceCtx};

fn tiny() -> RunConfig {
    RunConfig::paper(PlatformId::Amd4A100, OpKind::Gemm, Precision::Double).scaled_down(8)
}

fn small_options() -> ServeOptions {
    ServeOptions {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 16,
        ..ServeOptions::default()
    }
}

/// A parsed exposition: metric line -> value, keyed by the full series
/// name including labels (`ugpc_run_hit_latency_us_bucket{le="4"}`).
struct Exposition {
    series: HashMap<String, f64>,
    histograms: Vec<String>,
}

/// Parse (and validate the grammar of) a Prometheus 0.0.4 text page.
fn parse_exposition(text: &str) -> Exposition {
    let mut series = HashMap::new();
    let mut histograms = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("type line has a name").to_string();
            let kind = parts.next().expect("type line has a kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown metric type {kind:?}"
            );
            if kind == "histogram" {
                histograms.push(name);
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        // Sample line: `name` or `name{labels}`, one space, float value.
        let (name, value) = line.rsplit_once(' ').expect("sample line has a value");
        let value: f64 = value.parse().unwrap_or_else(|_| {
            panic!("unparseable sample value in {line:?}");
        });
        assert!(
            name.chars().next().is_some_and(|c| c.is_ascii_alphabetic()),
            "bad series name in {line:?}"
        );
        let dup = series.insert(name.to_string(), value);
        assert!(dup.is_none(), "duplicate series {name}");
    }
    Exposition { series, histograms }
}

impl Exposition {
    fn get(&self, series: &str) -> f64 {
        *self
            .series
            .get(series)
            .unwrap_or_else(|| panic!("series {series} missing from exposition"))
    }

    /// Validate one histogram family: cumulative buckets are monotone
    /// non-decreasing in `le`, and the `+Inf` bucket equals `_count`.
    fn check_histogram(&self, name: &str) {
        let mut buckets: Vec<(f64, f64)> = self
            .series
            .iter()
            .filter_map(|(k, &v)| {
                let le = k
                    .strip_prefix(&format!("{name}_bucket{{le=\""))?
                    .strip_suffix("\"}")?;
                let bound = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().expect("numeric bucket bound")
                };
                Some((bound, v))
            })
            .collect();
        assert!(!buckets.is_empty(), "{name}: no buckets");
        buckets.sort_by(|a, b| a.0.total_cmp(&b.0));
        for pair in buckets.windows(2) {
            assert!(
                pair[1].1 >= pair[0].1,
                "{name}: cumulative buckets must be non-decreasing"
            );
        }
        let (last_bound, last) = *buckets.last().unwrap();
        assert!(last_bound.is_infinite(), "{name}: missing +Inf bucket");
        assert_eq!(last, self.get(&format!("{name}_count")), "{name}: +Inf");
        assert!(self.get(&format!("{name}_sum")) >= 0.0);
    }
}

#[test]
fn metrics_scrape_is_valid_and_counters_are_monotone() {
    let handle = Server::bind("127.0.0.1:0", small_options())
        .expect("bind")
        .spawn();
    let mut client = Client::connect(handle.addr()).unwrap();

    client.run(tiny()).unwrap();
    let first = parse_exposition(&client.metrics().unwrap());
    for h in &first.histograms {
        first.check_histogram(h);
    }
    assert_eq!(first.get("ugpc_cache_misses"), 1.0);
    assert_eq!(first.get("ugpc_simulations_total"), 1.0);
    assert!(first.get("ugpc_uptime_seconds") >= 0.0);
    assert_eq!(first.get("ugpc_open_connections"), 1.0);
    // Shard health gauges: exported (and sane) even when idle. The
    // scrape itself was the only in-flight request, so both queues had
    // better be empty by publish time.
    assert!(first.get("ugpc_inbox_depth") >= 0.0);
    assert!(first.get("ugpc_write_backlog_bytes") >= 0.0);
    // Append-log gauges: a memory-only server exports them as zeros
    // rather than omitting the series (dashboards need stable names).
    assert_eq!(first.get("ugpc_persist_log_bytes"), 0.0);
    assert_eq!(first.get("ugpc_persist_log_records"), 0.0);
    assert_eq!(first.get("ugpc_persist_recovered_records"), 0.0);
    assert_eq!(first.get("ugpc_persist_truncated_bytes"), 0.0);

    // More traffic, then a second scrape: every counter is monotone.
    client.run(tiny()).unwrap(); // cache hit
    client.stats().unwrap();
    let second = parse_exposition(&client.metrics().unwrap());
    for h in &second.histograms {
        second.check_histogram(h);
    }
    for (name, &v1) in &first.series {
        if name.contains("_total") || name.ends_with("_count") || name.ends_with("_sum") {
            let v2 = second.get(name);
            assert!(v2 >= v1, "{name} went backwards: {v1} -> {v2}");
        }
    }
    assert_eq!(second.get("ugpc_cache_hits"), 1.0);
    assert_eq!(second.get("ugpc_run_hit_latency_us_count"), 1.0);
    assert_eq!(second.get("ugpc_run_miss_latency_us_count"), 1.0);

    // The registry and the StatsReport are views of the same atomics.
    let stats = client.stats().unwrap();
    let third = parse_exposition(&client.metrics().unwrap());
    assert_eq!(
        third.get("ugpc_simulations_total") as u64,
        stats.simulations_executed
    );
    assert_eq!(third.get("ugpc_cache_hits") as u64, stats.cache.hits);
    assert_eq!(third.get("ugpc_cache_misses") as u64, stats.cache.misses);
    let hit_lat = stats.latency.iter().find(|l| l.op == "run_hit").unwrap();
    assert_eq!(
        third.get("ugpc_run_hit_latency_us_count") as u64,
        hit_lat.count
    );

    handle.stop();
}

#[test]
fn client_trace_id_reaches_log_and_perfetto_export() {
    let (logger, buf) = Logger::to_buffer(Level::Debug);
    let handle = Server::bind_with_logger("127.0.0.1:0", small_options(), logger)
        .expect("bind")
        .spawn();
    let mut client = Client::connect(handle.addr()).unwrap();

    let ctx = TraceCtx {
        trace_id: 0x00c0_ffee_0042,
        span_id: 0x0000_0bad_cafe,
    };
    let run = client.run_perfetto_traced(tiny(), Some(ctx)).unwrap();
    assert_eq!(run.trace_id, "00c0ffee0042");
    assert_eq!(run.span_id, "00000badcafe");
    assert!(run.report.makespan_s > 0.0);

    // The export embeds the context as a metadata record.
    assert!(run.trace_json.contains("trace_context"), "metadata record");
    assert!(run.trace_json.contains("00c0ffee0042"), "trace id embedded");
    let parsed = serde::json::parse(&run.trace_json).expect("perfetto JSON parses");
    assert!(parsed.get("traceEvents").is_some());

    // The server's JSON log lines carry the same ids, and parse.
    let text = String::from_utf8(buf.lock().clone()).expect("utf8 log");
    let mut saw_trace = false;
    for line in text.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("log line is JSON");
        if v.get("trace_id").and_then(|t| t.as_str()) == Some("00c0ffee0042") {
            saw_trace = true;
            assert_eq!(
                v.get("span_id").and_then(|s| s.as_str()),
                Some("00000badcafe")
            );
        }
    }
    assert!(saw_trace, "client trace id absent from server log:\n{text}");

    // A repeat of the same request is a cache hit with the same bytes.
    let again = client.run_perfetto_traced(tiny(), Some(ctx)).unwrap();
    assert_eq!(again.trace_json, run.trace_json);
    let stats = client.stats().unwrap();
    assert_eq!(stats.simulations_executed, 1);

    handle.stop();
}
