//! Kill-and-restart persistence suite: the append-log cache tier must
//! make a restarted server indistinguishable from one that never died —
//! recovered keys replay **byte-identically** with zero simulations —
//! and a corrupt or torn log tail must degrade to recomputation, never
//! to wrong bytes or a failed boot.

// Test helpers may unwrap (clippy's allow-unwrap-in-tests does not
// reach helper fns in integration-test files).
#![allow(clippy::unwrap_used)]

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use ugpc_core::RunConfig;
use ugpc_hwsim::{OpKind, PlatformId, Precision};
use ugpc_serve::protocol::encode;
use ugpc_serve::{Client, Request, RunRequest, ServeOptions, Server, ServerHandle, ServerMode};

fn tiny() -> RunConfig {
    RunConfig::paper(PlatformId::Amd4A100, OpKind::Gemm, Precision::Double).scaled_down(8)
}

fn seeded(seed: u64) -> RunConfig {
    tiny().with_scheduler(ugpc_runtime::SchedPolicy::Random { seed })
}

fn log_path(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ugpc-serve-persist-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir.join("cache.log")
}

fn spawn_persistent(mode: ServerMode, path: &Path) -> ServerHandle {
    Server::bind(
        "127.0.0.1:0",
        ServeOptions {
            workers: 1,
            queue_capacity: 16,
            cache_capacity: 16,
            persist_path: Some(path.to_path_buf()),
            mode,
            ..ServeOptions::default()
        },
    )
    .expect("bind ephemeral port")
    .spawn()
}

/// Sequential request/reply turns over a raw socket, returning the
/// exact reply lines (the replay comparisons are byte comparisons).
fn exchange(handle: &ServerHandle, configs: &[RunConfig]) -> Vec<String> {
    let stream = TcpStream::connect(handle.addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let mut out = Vec::with_capacity(configs.len());
    for cfg in configs {
        let line = encode(&Request::Run(RunRequest::new(cfg.clone())));
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        assert!(
            reader.read_line(&mut reply).unwrap() > 0,
            "connection closed"
        );
        out.push(reply.trim_end().to_string());
    }
    out
}

/// Generation 1 computes and persists; generation 2 (a fresh process'
/// worth of state over the same log) serves every key byte-identically
/// with **zero** simulations; generation 3 proves the log is
/// architecture-neutral by replaying into the blocking server.
#[test]
fn restart_replays_byte_identically_without_simulating() {
    let path = log_path("restart");
    let configs: Vec<RunConfig> = (0..3).map(seeded).collect();

    let first = spawn_persistent(ServerMode::EventLoop, &path);
    let original = exchange(&first, &configs);
    let stats = Client::connect(first.addr()).unwrap().stats().unwrap();
    assert_eq!(stats.simulations_executed, 3);
    let persist = stats.persist.expect("persist tier attached");
    assert_eq!((persist.recovered, persist.appended), (0, 3));
    assert!(persist.bytes > 0);
    first.stop();

    let second = spawn_persistent(ServerMode::EventLoop, &path);
    let replayed = exchange(&second, &configs);
    let stats = Client::connect(second.addr()).unwrap().stats().unwrap();
    second.stop();
    assert_eq!(
        replayed, original,
        "recovered replies must be byte-identical"
    );
    assert_eq!(
        stats.simulations_executed, 0,
        "every key served from the recovered corpus"
    );
    assert_eq!(stats.cache.hits, 3);
    assert_eq!(stats.cache.misses, 0);
    let persist = stats.persist.expect("persist tier attached");
    assert_eq!((persist.recovered, persist.appended), (3, 0));
    assert_eq!(
        persist.truncated_bytes,
        Some(0),
        "clean replay truncates nothing"
    );

    // The log is a property of the cache, not the TCP architecture: the
    // blocking seed server replays the event-loop server's corpus too.
    let third = spawn_persistent(ServerMode::Blocking, &path);
    let cross = exchange(&third, &configs);
    let stats = Client::connect(third.addr()).unwrap().stats().unwrap();
    third.stop();
    assert_eq!(cross, original, "cross-architecture replay diverged");
    assert_eq!(stats.simulations_executed, 0);
}

/// Kill mid-corpus: flip one payload byte in the middle record. Recovery
/// keeps everything before the corruption, truncates the rest, and the
/// server recomputes the lost keys — reproducing the original bytes
/// (simulation is deterministic), now with simulations > 0 for exactly
/// the lost keys. The repaired log then persists the recomputed results.
#[test]
fn corrupt_tail_truncates_and_recomputes_over_the_wire() {
    let path = log_path("corrupt");
    let configs: Vec<RunConfig> = (0..3).map(seeded).collect();

    let first = spawn_persistent(ServerMode::EventLoop, &path);
    let original = exchange(&first, &configs);
    first.stop();

    // Record layout: [len u32][crc u32][key u64][payload]. Sequential
    // requests over one worker append in request order, so record i
    // holds original[i]. Flip a payload byte inside record 1.
    let mut raw = std::fs::read(&path).expect("read log");
    let rec0 = 8 + 8 + original[0].len();
    let flip_at = rec0 + 8 + 8 + 2;
    raw[flip_at] ^= 0xFF;
    std::fs::write(&path, &raw).expect("write corrupted log");

    let second = spawn_persistent(ServerMode::EventLoop, &path);
    let replayed = exchange(&second, &configs);
    let stats = Client::connect(second.addr()).unwrap().stats().unwrap();
    second.stop();
    assert_eq!(
        replayed, original,
        "recomputed keys must reproduce the original bytes"
    );
    assert_eq!(
        stats.simulations_executed, 2,
        "exactly the corrupted-and-after keys recompute"
    );
    assert_eq!(stats.cache.hits, 1, "the intact prefix record still serves");
    let persist = stats.persist.expect("persist tier attached");
    assert_eq!(persist.recovered, 1, "scan stopped at the corrupt record");
    assert_eq!(persist.appended, 2, "recomputed results re-persisted");
    let truncated = persist.truncated_bytes.expect("field present");
    assert!(
        truncated > 0,
        "the discarded tail must be visible over the wire"
    );

    // The repaired log now holds the full corpus again: one more
    // restart serves everything with zero simulations.
    let third = spawn_persistent(ServerMode::EventLoop, &path);
    let healed = exchange(&third, &configs);
    let stats = Client::connect(third.addr()).unwrap().stats().unwrap();
    third.stop();
    assert_eq!(healed, original);
    assert_eq!(stats.simulations_executed, 0);
    assert_eq!(stats.persist.expect("attached").recovered, 3);
}

/// `ClearCache` over the wire truncates the log: a cleared corpus must
/// not resurrect on restart.
#[test]
fn clear_cache_truncates_the_log_across_restart() {
    let path = log_path("clear");
    let first = spawn_persistent(ServerMode::EventLoop, &path);
    exchange(&first, &[tiny()]);
    let mut client = Client::connect(first.addr()).unwrap();
    client.clear_cache().unwrap();
    first.stop();

    let second = spawn_persistent(ServerMode::EventLoop, &path);
    let stats = Client::connect(second.addr()).unwrap().stats().unwrap();
    assert_eq!(stats.persist.expect("attached").recovered, 0);
    assert_eq!(stats.cache.entries, 0, "cleared corpus resurrected");
    // The service still works and re-persists fresh results.
    exchange(&second, &[tiny()]);
    let stats = Client::connect(second.addr()).unwrap().stats().unwrap();
    second.stop();
    assert_eq!(stats.simulations_executed, 1);
    assert_eq!(stats.persist.expect("attached").appended, 1);
}
