//! End-to-end tests of the TCP service: byte-fidelity, single-flight
//! under concurrent clients, malformed-input resilience, backpressure,
//! and the ops surface.

// Test helpers may unwrap (clippy's allow-unwrap-in-tests does not
// reach helper fns in integration-test files).
#![allow(clippy::unwrap_used)]

use ugpc_core::{run_study, RunConfig};
use ugpc_hwsim::{OpKind, PlatformId, Precision};
use ugpc_serve::{error_code, Client, Response, ServeOptions, Server};

fn tiny() -> RunConfig {
    RunConfig::paper(PlatformId::Amd4A100, OpKind::Gemm, Precision::Double).scaled_down(8)
}

fn spawn_server(options: ServeOptions) -> ugpc_serve::ServerHandle {
    Server::bind("127.0.0.1:0", options)
        .expect("bind ephemeral port")
        .spawn()
}

fn small_options() -> ServeOptions {
    ServeOptions {
        workers: 2,
        queue_capacity: 16,
        cache_capacity: 16,
        ..ServeOptions::default()
    }
}

#[test]
fn served_report_matches_direct_library_call() {
    let handle = spawn_server(small_options());
    let mut client = Client::connect(handle.addr()).unwrap();
    let served = client.run(tiny()).unwrap();
    let direct = run_study(&tiny());
    assert_eq!(
        serde_json::to_string(&served).unwrap(),
        serde_json::to_string(&direct).unwrap(),
        "service must be byte-identical to the library"
    );
    handle.stop();
}

#[test]
fn concurrent_identical_requests_simulate_once() {
    let handle = spawn_server(small_options());
    let n = 6;
    let responses: Vec<String> = std::thread::scope(|s| {
        let addr = handle.addr();
        let handles: Vec<_> = (0..n)
            .map(|_| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let report = client.run(tiny()).unwrap();
                    serde_json::to_string(&report).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in &responses[1..] {
        assert_eq!(r, &responses[0], "all N responses identical");
    }
    let mut client = Client::connect(handle.addr()).unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.simulations_executed, 1,
        "single-flight: one simulation"
    );
    assert_eq!(stats.cache.misses, 1);
    assert_eq!(
        stats.cache.hits + stats.cache.coalesced,
        (n - 1) as u64,
        "everyone else reused the leader's result: {stats:?}"
    );
    handle.stop();
}

#[test]
fn malformed_input_gets_error_reply_and_connection_survives() {
    let handle = spawn_server(small_options());
    let mut client = Client::connect(handle.addr()).unwrap();
    match client.roundtrip_raw("this is not json").unwrap() {
        Response::Error(e) => assert_eq!(e.code, error_code::BAD_REQUEST),
        other => panic!("expected error, got {other:?}"),
    }
    match client.roundtrip_raw("{\"Run\": {\"config\": 5}}").unwrap() {
        Response::Error(e) => assert_eq!(e.code, error_code::BAD_REQUEST),
        other => panic!("expected error, got {other:?}"),
    }
    // Same connection still works for a real request afterwards.
    client.ping().unwrap();
    let report = client.run(tiny()).unwrap();
    assert!(report.gflops > 0.0);
    handle.stop();
}

#[test]
fn invalid_config_is_structured_error() {
    let handle = spawn_server(small_options());
    let mut client = Client::connect(handle.addr()).unwrap();
    let mut cfg = tiny();
    cfg.nb += 1; // tile no longer divides N
    match client.run(cfg) {
        Err(ugpc_serve::ClientError::Server(e)) => {
            assert_eq!(e.code, error_code::INVALID_CONFIG);
            assert!(e.message.contains("divide"), "{}", e.message);
        }
        other => panic!("expected invalid_config, got {other:?}"),
    }
    handle.stop();
}

#[test]
fn dynamic_study_over_the_wire() {
    let handle = spawn_server(small_options());
    let mut client = Client::connect(handle.addr()).unwrap();
    let report = client.run_dynamic(tiny(), 3).unwrap();
    assert_eq!(report.iterations.len(), 3);
    assert!(report.final_efficiency_gflops_w > 0.0);
    // Served dynamic study matches the direct call byte-for-byte too.
    let direct = ugpc_core::run_dynamic_study(&tiny(), 3);
    assert_eq!(
        serde_json::to_string(&report).unwrap(),
        serde_json::to_string(&direct).unwrap()
    );
    handle.stop();
}

#[test]
fn controlled_run_over_the_wire() {
    use ugpc_control::{ControllerSpec, ObjectiveKind};
    let handle = spawn_server(small_options());
    let mut client = Client::connect(handle.addr()).unwrap();
    let spec = ControllerSpec::new(ObjectiveKind::GflopsPerWatt).with_period(0.05);
    let run = client.run_controlled(tiny(), spec.clone()).unwrap();
    assert_eq!(run.objective, "gflops-w");
    assert!(run.report.makespan_s > 0.0);
    // Served controlled run matches the direct call byte-for-byte.
    let direct = ugpc_core::run_study_controlled(&tiny(), &spec);
    assert_eq!(
        serde_json::to_string(&run).unwrap(),
        serde_json::to_string(&direct).unwrap()
    );
    // A controlled request and the static request of the same config use
    // distinct cache slots: running one then the other must be two
    // misses, and repeating each hits its own entry.
    let static_report = client.run(tiny()).unwrap();
    let again = client.run_controlled(tiny(), spec.clone()).unwrap();
    assert_eq!(
        serde_json::to_string(&again).unwrap(),
        serde_json::to_string(&run).unwrap()
    );
    let stats = client.stats().unwrap();
    assert_eq!(
        stats.cache.misses, 2,
        "controlled and static are distinct entries"
    );
    assert!(stats.cache.hits >= 1);
    assert!(static_report.gflops > 0.0);
    // Malformed spec is a structured error, not a dropped connection.
    match client.run_controlled(tiny(), spec.clone().with_period(0.0)) {
        Err(ugpc_serve::ClientError::Server(e)) => {
            assert_eq!(e.code, error_code::INVALID_CONFIG);
            assert!(e.message.contains("period"), "{}", e.message);
        }
        other => panic!("expected invalid_config, got {other:?}"),
    }
    handle.stop();
}

#[test]
fn traced_run_over_the_wire() {
    let handle = spawn_server(small_options());
    let mut client = Client::connect(handle.addr()).unwrap();
    let traced = client.run_traced(tiny(), 24).unwrap();
    assert!(traced.report.makespan_s > 0.0);
    assert!(traced.power.avg_w.iter().all(|l| l.len() == 24));
    // Served timeline matches the direct call byte-for-byte.
    let direct = ugpc_core::run_study_traced(&tiny(), 24);
    assert_eq!(
        serde_json::to_string(&traced).unwrap(),
        serde_json::to_string(&direct).unwrap()
    );
    handle.stop();
}

#[test]
fn cache_eviction_respects_bound_over_the_wire() {
    let handle = spawn_server(ServeOptions {
        workers: 1,
        queue_capacity: 16,
        cache_capacity: 2,
        ..ServeOptions::default()
    });
    let mut client = Client::connect(handle.addr()).unwrap();
    for seed in 0..4u64 {
        let cfg = tiny().with_scheduler(ugpc_runtime::SchedPolicy::Random { seed });
        client.run(cfg).unwrap();
    }
    let stats = client.stats().unwrap();
    assert_eq!(stats.cache.entries, 2, "LRU bound holds");
    assert_eq!(stats.cache.evictions, 2);
    assert_eq!(stats.cache.misses, 4);
    handle.stop();
}

#[test]
fn stats_and_clear_cache_roundtrip() {
    let handle = spawn_server(small_options());
    let mut client = Client::connect(handle.addr()).unwrap();
    client.run(tiny()).unwrap();
    client.run(tiny()).unwrap();
    let stats = client.stats().unwrap();
    assert!(stats.uptime_s >= 0.0);
    assert_eq!(stats.workers, 2);
    assert_eq!(stats.cache.hits, 1);
    assert!(stats.cache.hit_rate > 0.0);
    assert_eq!(stats.open_connections, 1);
    // Latency histograms recorded both classes.
    let lat = |op: &str| {
        stats
            .latency
            .iter()
            .find(|l| l.op == op)
            .map(|l| l.count)
            .unwrap_or(0)
    };
    assert_eq!(lat("run_miss"), 1);
    assert_eq!(lat("run_hit"), 1);
    client.clear_cache().unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.cache.entries, 0);
    handle.stop();
}

#[test]
fn shutdown_stops_the_accept_loop() {
    let handle = spawn_server(small_options());
    let addr = handle.addr();
    let mut client = Client::connect(addr).unwrap();
    client.shutdown().unwrap();
    handle.stop(); // joins promptly because the loop already exited
                   // New connections are refused (or reset) once the server is gone.
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert!(
        Client::connect(addr).and_then(|mut c| c.ping()).is_err(),
        "server should be gone"
    );
}

/// The event-queue backend must be invisible on the wire: a server run
/// entirely under the heap backend and one under the calendar backend
/// answer the same request with byte-identical JSON, and the request's
/// cache key is the same either way (the backend is deliberately not
/// part of the cache identity).
#[test]
fn queue_backend_is_invisible_on_the_wire() {
    use ugpc_core::{set_backend_override, QueueBackend};

    let served_under = |backend: QueueBackend| {
        set_backend_override(Some(backend));
        let key = ugpc_serve::RunRequest::new(tiny()).cache_key();
        let handle = spawn_server(small_options());
        let mut client = Client::connect(handle.addr()).unwrap();
        let report = client.run(tiny()).unwrap();
        handle.stop();
        set_backend_override(None);
        (key, serde_json::to_string(&report).unwrap())
    };
    let (heap_key, heap_bytes) = served_under(QueueBackend::Heap);
    let (cal_key, cal_bytes) = served_under(QueueBackend::Calendar);
    assert_eq!(heap_key, cal_key, "backend must not enter the cache key");
    assert_eq!(
        heap_bytes, cal_bytes,
        "served reports must be byte-identical across queue backends"
    );
}
