//! Differential suite: the event-loop server versus the blocking seed
//! server, over every submission shape and both DES queue backends.
//!
//! The non-negotiable invariant of the serve rewrite is that the
//! architecture is invisible on the wire: for the same request stream,
//! the event loop and the thread-per-connection baseline produce
//! **byte-identical reply lines**, the same cache-slot behavior (same
//! misses, same simulation count, same retained entries), and the same
//! structured errors — whether requests arrive one at a time
//! (sequential), many-in-flight on one connection (pipelined), or as a
//! single `batch` line. The DES queue backend (binary heap vs calendar
//! wheel) must be equally invisible, and deliberately absent from the
//! cache key.

// Test helpers may unwrap (clippy's allow-unwrap-in-tests does not
// reach helper fns in integration-test files).
#![allow(clippy::unwrap_used)]

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use ugpc_core::{set_backend_override, QueueBackend, RunConfig};
use ugpc_hwsim::{OpKind, PlatformId, Precision};
use ugpc_serve::protocol::encode;
use ugpc_serve::{
    Client, IntrospectRequest, Request, RunRequest, ServeOptions, Server, ServerHandle, ServerMode,
    StatsReport,
};

fn tiny() -> RunConfig {
    RunConfig::paper(PlatformId::Amd4A100, OpKind::Gemm, Precision::Double).scaled_down(8)
}

fn seeded(seed: u64) -> RunConfig {
    tiny().with_scheduler(ugpc_runtime::SchedPolicy::Random { seed })
}

fn options(mode: ServerMode) -> ServeOptions {
    ServeOptions {
        workers: 2,
        queue_capacity: 32,
        cache_capacity: 32,
        mode,
        ..ServeOptions::default()
    }
}

fn spawn(mode: ServerMode) -> ServerHandle {
    Server::bind("127.0.0.1:0", options(mode))
        .expect("bind ephemeral port")
        .spawn()
}

/// The workload every scenario submits: four distinct configs plus a
/// repeat of the first (one slot must be served from cache or by
/// coalescing, never by a fifth simulation).
fn workload() -> Vec<RunConfig> {
    let mut configs: Vec<RunConfig> = (0..3).map(seeded).collect();
    configs.insert(0, tiny());
    configs.push(tiny());
    configs
}

fn run_lines(configs: &[RunConfig]) -> Vec<String> {
    configs
        .iter()
        .map(|c| encode(&Request::Run(RunRequest::new(c.clone()))))
        .collect()
}

fn connect(addr: SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    (BufReader::new(stream.try_clone().unwrap()), stream)
}

fn read_replies(reader: &mut BufReader<TcpStream>, n: usize) -> Vec<String> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut reply = String::new();
        assert!(
            reader.read_line(&mut reply).unwrap() > 0,
            "server closed the connection mid-stream"
        );
        out.push(reply.trim_end().to_string());
    }
    out
}

/// One request line per turn: write, read, repeat.
fn exchange_sequential(addr: SocketAddr, lines: &[String]) -> Vec<String> {
    let (mut reader, mut writer) = connect(addr);
    let mut out = Vec::with_capacity(lines.len());
    for line in lines {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        out.extend(read_replies(&mut reader, 1));
    }
    out
}

/// Every request line written before any reply is read; replies must
/// come back in request order regardless of completion order.
fn exchange_pipelined(addr: SocketAddr, lines: &[String]) -> Vec<String> {
    let (mut reader, mut writer) = connect(addr);
    for line in lines {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
    }
    writer.flush().unwrap();
    read_replies(&mut reader, lines.len())
}

/// One `batch` wire line carrying N configs; N ordered reply lines.
fn exchange_batched(addr: SocketAddr, configs: &[RunConfig]) -> Vec<String> {
    let (mut reader, mut writer) = connect(addr);
    let runs: Vec<RunRequest> = configs.iter().cloned().map(RunRequest::new).collect();
    let line = encode(&Request::Batch(runs));
    writer.write_all(line.as_bytes()).unwrap();
    writer.write_all(b"\n").unwrap();
    writer.flush().unwrap();
    read_replies(&mut reader, configs.len())
}

fn stats_of(addr: SocketAddr) -> StatsReport {
    Client::connect(addr).unwrap().stats().unwrap()
}

const SCENARIOS: [&str; 3] = ["sequential", "pipelined", "batched"];

/// Run `scenario` against a fresh server in `mode` and return the reply
/// lines plus the end-of-run stats.
fn run_scenario(mode: ServerMode, scenario: &str) -> (Vec<String>, StatsReport) {
    let configs = workload();
    let handle = spawn(mode);
    let replies = match scenario {
        "sequential" => exchange_sequential(handle.addr(), &run_lines(&configs)),
        "pipelined" => exchange_pipelined(handle.addr(), &run_lines(&configs)),
        "batched" => exchange_batched(handle.addr(), &configs),
        other => panic!("unknown scenario {other}"),
    };
    let stats = stats_of(handle.addr());
    handle.stop();
    (replies, stats)
}

/// The full matrix: {sequential, pipelined, batched} × {heap, calendar}
/// × {event loop, blocking}. Reply bytes must be identical across every
/// cell, and cache-slot behavior must agree: four misses (the four
/// distinct configs), four simulations, four retained entries, and the
/// repeated slot answered without a fifth simulation — from the ready
/// entry (a hit) or by coalescing behind the identical in-flight leader
/// (pipelined/batched submission races the repeat against its twin; both
/// are legal, and either way the bytes match).
#[test]
fn reply_bytes_identical_across_modes_scenarios_and_backends() {
    let mut reference: Option<Vec<String>> = None;
    for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
        set_backend_override(Some(backend));
        for mode in [ServerMode::EventLoop, ServerMode::Blocking] {
            for scenario in SCENARIOS {
                let (replies, stats) = run_scenario(mode, scenario);
                let cell = format!("{mode:?}/{scenario}/{backend:?}");
                assert_eq!(replies.len(), 5, "{cell}");
                match &reference {
                    None => reference = Some(replies),
                    Some(want) => {
                        assert_eq!(&replies, want, "reply bytes diverged in {cell}");
                    }
                }
                assert_eq!(
                    stats.cache.misses, 4,
                    "{cell}: one miss per distinct config"
                );
                assert_eq!(stats.simulations_executed, 4, "{cell}: no duplicate work");
                assert_eq!(stats.cache.entries, 4, "{cell}: all four slots retained");
                assert_eq!(
                    stats.cache.hits + stats.cache.coalesced,
                    1,
                    "{cell}: the repeated config reused the leader's result"
                );
                assert_eq!(stats.parse_errors, 0, "{cell}");
                assert_eq!(stats.invalid_configs, 0, "{cell}");
            }
        }
    }
    set_backend_override(None);
    // The repeated slot must echo the first slot's bytes exactly.
    let replies = reference.expect("matrix ran");
    assert_eq!(replies[4], replies[0], "cache hit must be byte-identical");
}

/// The DES backend is deliberately not part of the request identity:
/// the same config produces the same cache key under either backend.
#[test]
fn cache_keys_ignore_the_queue_backend() {
    for cfg in workload() {
        set_backend_override(Some(QueueBackend::Heap));
        let heap = RunRequest::new(cfg.clone()).cache_key();
        set_backend_override(Some(QueueBackend::Calendar));
        let calendar = RunRequest::new(cfg).cache_key();
        set_backend_override(None);
        assert_eq!(heap, calendar, "backend leaked into the cache key");
    }
}

/// A batch slot and a standalone run of the same config share one cache
/// slot: the standalone run's entry answers the batch slot (and the
/// bytes match), in both architectures.
#[test]
fn batch_slots_share_cache_slots_with_single_runs() {
    for mode in [ServerMode::EventLoop, ServerMode::Blocking] {
        let handle = spawn(mode);
        let single = exchange_sequential(handle.addr(), &run_lines(&[tiny()]));
        let batch = exchange_batched(handle.addr(), &[tiny(), seeded(9)]);
        let stats = stats_of(handle.addr());
        handle.stop();
        assert_eq!(
            batch[0], single[0],
            "{mode:?}: batch slot must replay the single run's bytes"
        );
        assert_eq!(stats.cache.misses, 2, "{mode:?}: tiny() missed only once");
        assert_eq!(stats.cache.hits, 1, "{mode:?}: the batch slot hit it");
        assert_eq!(stats.simulations_executed, 2, "{mode:?}");
    }
}

/// Error slots are part of the differential contract too: an invalid
/// config in the middle of each submission shape produces the same
/// structured error bytes in both architectures, in its request-order
/// position, without desynchronizing the later slots.
#[test]
fn error_slots_are_identical_and_keep_the_stream_in_sync() {
    let mut invalid = tiny();
    invalid.nb += 1; // tile no longer divides N
    let configs = vec![tiny(), invalid, seeded(1)];
    let mut reference: Option<Vec<String>> = None;
    for mode in [ServerMode::EventLoop, ServerMode::Blocking] {
        for scenario in SCENARIOS {
            let handle = spawn(mode);
            let replies = match scenario {
                "sequential" => exchange_sequential(handle.addr(), &run_lines(&configs)),
                "pipelined" => exchange_pipelined(handle.addr(), &run_lines(&configs)),
                "batched" => exchange_batched(handle.addr(), &configs),
                other => panic!("unknown scenario {other}"),
            };
            let stats = stats_of(handle.addr());
            handle.stop();
            let cell = format!("{mode:?}/{scenario}");
            assert_eq!(replies.len(), 3, "{cell}: every slot answered");
            assert!(
                replies[1].contains("invalid_config"),
                "{cell}: middle slot must be the structured error: {}",
                replies[1]
            );
            match &reference {
                None => reference = Some(replies),
                Some(want) => assert_eq!(&replies, want, "replies diverged in {cell}"),
            }
            assert_eq!(stats.invalid_configs, 1, "{cell}");
            assert_eq!(stats.simulations_executed, 2, "{cell}");
        }
    }
}

/// With info logging off, the event loop memoizes request-line bytes to
/// skip re-parsing repeats (`Service::memo_allowed`). The fast path must
/// be invisible on the wire: byte-identical replies to the blocking
/// server, exact request counters, and still exactly one simulation.
#[test]
fn request_identity_memo_is_invisible_on_the_wire() {
    let spawn_quiet = |mode: ServerMode| {
        Server::bind_with_logger("127.0.0.1:0", options(mode), ugpc_serve::Logger::disabled())
            .expect("bind ephemeral port")
            .spawn()
    };
    let line = encode(&Request::Run(RunRequest::new(tiny())));
    let lines: Vec<String> = vec![line; 12];
    let eventloop = spawn_quiet(ServerMode::EventLoop);
    let fast = exchange_pipelined(eventloop.addr(), &lines);
    let stats = stats_of(eventloop.addr());
    eventloop.stop();
    let blocking = spawn_quiet(ServerMode::Blocking);
    let slow = exchange_sequential(blocking.addr(), &lines);
    blocking.stop();
    assert_eq!(fast, slow, "memo fast path changed the reply bytes");
    // 12 memoized runs + the stats request itself: a probe-served
    // repeat must count exactly like a parsed one.
    assert_eq!(stats.requests_total, 13, "every repeat counted");
    assert_eq!(stats.simulations_executed, 1);
    assert_eq!(stats.cache.misses, 1);
    assert_eq!(stats.cache.hits + stats.cache.coalesced, 11);
}

/// Raw garbage (not a batch concern — it is not addressable in a batch)
/// gets the same `bad_request` bytes from both architectures, and the
/// connection survives to serve the next request identically.
#[test]
fn malformed_lines_are_identical_across_modes() {
    let garbage = ["this is not json", "{\"Run\": {\"config\": 5}}"];
    let mut reference: Option<Vec<String>> = None;
    for mode in [ServerMode::EventLoop, ServerMode::Blocking] {
        let handle = spawn(mode);
        let (mut reader, mut writer) = connect(handle.addr());
        let mut replies = Vec::new();
        for line in garbage {
            writer.write_all(line.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            writer.flush().unwrap();
            replies.extend(read_replies(&mut reader, 1));
        }
        // The connection still serves a real request afterwards.
        let run = encode(&Request::Run(RunRequest::new(tiny())));
        writer.write_all(run.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        replies.extend(read_replies(&mut reader, 1));
        let stats = stats_of(handle.addr());
        handle.stop();
        assert!(
            replies[0].contains("bad_request"),
            "{mode:?}: {}",
            replies[0]
        );
        assert_eq!(stats.parse_errors, 2, "{mode:?}");
        match &reference {
            None => reference = Some(replies),
            Some(want) => assert_eq!(&replies, want, "replies diverged in {mode:?}"),
        }
    }
}

/// The flight recorder is pure observation: a server with the recorder
/// attached (the default) and one with it detached produce
/// byte-identical reply lines for the same request stream, across both
/// architectures, every submission shape, and both DES queue backends.
/// This is the neutrality half of the observability contract — spans
/// may time anything they like as long as no reply byte moves.
#[test]
fn flight_recorder_is_invisible_on_the_wire() {
    let spawn_with = |mode: ServerMode, recorder: bool| {
        let opts = ServeOptions {
            recorder,
            ..options(mode)
        };
        Server::bind("127.0.0.1:0", opts)
            .expect("bind ephemeral port")
            .spawn()
    };
    let run = |mode: ServerMode, scenario: &str, recorder: bool| -> Vec<String> {
        let configs = workload();
        let handle = spawn_with(mode, recorder);
        let replies = match scenario {
            "sequential" => exchange_sequential(handle.addr(), &run_lines(&configs)),
            "pipelined" => exchange_pipelined(handle.addr(), &run_lines(&configs)),
            "batched" => exchange_batched(handle.addr(), &configs),
            other => panic!("unknown scenario {other}"),
        };
        handle.stop();
        replies
    };
    for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
        set_backend_override(Some(backend));
        for mode in [ServerMode::EventLoop, ServerMode::Blocking] {
            for scenario in SCENARIOS {
                let attached = run(mode, scenario, true);
                let detached = run(mode, scenario, false);
                assert_eq!(
                    attached, detached,
                    "recorder changed the wire bytes in {mode:?}/{scenario}/{backend:?}"
                );
            }
        }
    }
    set_backend_override(None);
}

/// Introspect exactness: every span tree the recorder returns
/// telescopes — the phase durations sum to the root total *exactly*
/// (integer µs, no rounding slop) — and a recorder-off server answers
/// `enabled: false` instead of erroring.
#[test]
fn introspect_span_trees_telescope_exactly() {
    let handle = spawn(ServerMode::EventLoop);
    let _ = exchange_pipelined(handle.addr(), &run_lines(&workload()));
    let report = Client::connect(handle.addr())
        .unwrap()
        .introspect(IntrospectRequest {
            last: Some(16),
            worst: Some(8),
        })
        .unwrap();
    handle.stop();
    assert!(report.enabled, "event-loop default attaches the recorder");
    assert!(report.recorded >= 5, "all five workload slots recorded");
    assert!(!report.spans.is_empty());
    assert!(!report.worst.is_empty());
    for dump in report.spans.iter().chain(report.worst.iter()) {
        let sum: u64 = dump.phases.iter().map(|(_, us)| us).sum();
        assert_eq!(
            sum, dump.total_us,
            "trace {} phase sums must telescope to the root total",
            dump.trace
        );
        assert!(!dump.phases.is_empty(), "trace {}", dump.trace);
    }
    // The per-phase decomposition covers the same uptime: the root-total
    // histogram saw every recorded request.
    let total = report.total.expect("root decomposition present");
    assert_eq!(total.count, report.recorded);

    let detached = Server::bind(
        "127.0.0.1:0",
        ServeOptions {
            recorder: false,
            ..options(ServerMode::EventLoop)
        },
    )
    .expect("bind ephemeral port")
    .spawn();
    let report = Client::connect(detached.addr())
        .unwrap()
        .introspect(IntrospectRequest {
            last: None,
            worst: None,
        })
        .unwrap();
    detached.stop();
    assert!(!report.enabled, "detached server reports enabled: false");
    assert_eq!(report.recorded, 0);
    assert!(report.spans.is_empty() && report.worst.is_empty() && report.phases.is_empty());
    assert!(report.total.is_none());
}
