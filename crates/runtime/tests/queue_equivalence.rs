//! Queue-equivalence harness: the heap and calendar event-queue
//! backends must be *indistinguishable* — identical pop sequences,
//! identical peeks, identical batch drains — under arbitrary
//! interleavings of pushes (duplicate timestamps, zero-dt events, signed
//! zeros, past-time pushes, horizon-busting jumps), pops on empty
//! queues, and same-timestamp batch extraction.
//!
//! This is the PR's safety case for making the calendar queue the
//! default: `sim.rs` only ever observes the queue through this API, so
//! lockstep equality here (plus the study-level differentials in
//! `tests/observer_differential.rs` / `tests/parallel_differential.rs`)
//! proves the backend swap cannot change a simulation outcome.
//!
//! Times are compared by *bit pattern*, not `==`: a backend that popped
//! `0.0` where the reference popped `-0.0` would corrupt downstream
//! virtual-time arithmetic signs even though `-0.0 == 0.0`.
//!
//! Shrunk failures live in `queue_equivalence.proptest-regressions` and
//! are mirrored as explicit `regression_*` replay tests below, so they
//! re-run on every backend change even where regression-file replay is
//! unavailable.

// Test helpers may unwrap (clippy's allow-unwrap-in-tests does not
// reach helper fns in integration-test files).
#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use ugpc_hwsim::Secs;
use ugpc_runtime::{EventQueue, QueueBackend};

/// One scripted queue operation. Times arrive as palette selectors so
/// random scripts hit duplicates and signed zeros with high probability.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Step {
    Push(f64),
    Pop,
    Peek,
    PopAllEq,
}

/// Map a palette selector to a time. `wm` is the high-water mark of
/// times seen so far: selectors relative to it produce zero-dt events
/// (equal to the mark) and past-time pushes (below it).
fn time_of(sel: u8, wm: f64) -> f64 {
    match sel % 16 {
        0 => 0.0,
        1 => -0.0,    // == 0.0 but a distinct bit pattern and total_cmp-less
        2 | 3 => 1.0, // doubled selector: duplicate timestamps are common
        4 => 2.5,
        5 => wm, // zero-dt: lands exactly on the watermark
        6 => wm + 1e-9,
        7 => wm + 1.0,
        8 => 1.0e6, // far beyond any fresh calendar horizon
        9 => 3.0e6,
        10 => 0.125,
        11 => wm * 0.5, // often strictly in the past
        12 => 7.75,
        13 => wm + 0.03125,
        14 => 42.0,
        _ => 0.0625,
    }
}

fn decode(ops: &[(u8, u8)]) -> Vec<Step> {
    let mut wm = 0.0f64;
    ops.iter()
        .map(|&(kind, sel)| match kind % 8 {
            // Pushes weighted heavier than drains so queues grow deep.
            0..=3 => {
                let t = time_of(sel, wm);
                if t > wm {
                    wm = t;
                }
                Step::Push(t)
            }
            4 | 5 => Step::Pop,
            6 => Step::Peek,
            _ => Step::PopAllEq,
        })
        .collect()
}

/// Drive both backends through the same script, asserting bit-identical
/// observable behaviour at every step, then drain both to empty and
/// assert the tails match too. Uses unmonitored queues: scripts may
/// legally pop backwards in time (the resync-candidate usage pattern),
/// which the sanitize feature would otherwise veto.
fn assert_lockstep(steps: &[Step]) {
    let mut heap: EventQueue<u32> = EventQueue::unmonitored(QueueBackend::Heap);
    let mut cal: EventQueue<u32> = EventQueue::unmonitored(QueueBackend::Calendar);
    let mut payload = 0u32;
    let mut batch_h: Vec<u32> = Vec::new();
    let mut batch_c: Vec<u32> = Vec::new();
    for (i, step) in steps.iter().enumerate() {
        match *step {
            Step::Push(t) => {
                heap.push(Secs(t), payload);
                cal.push(Secs(t), payload);
                payload += 1;
            }
            Step::Pop => {
                let h = heap.pop();
                let c = cal.pop();
                assert_eq!(
                    h.map(|(t, p)| (t.value().to_bits(), p)),
                    c.map(|(t, p)| (t.value().to_bits(), p)),
                    "pop diverged at step {i}: heap {h:?} vs calendar {c:?}"
                );
            }
            Step::Peek => {
                let h = heap.peek_time().map(|t| t.value().to_bits());
                let c = cal.peek_time().map(|t| t.value().to_bits());
                assert_eq!(h, c, "peek diverged at step {i}");
            }
            Step::PopAllEq => {
                batch_h.clear();
                batch_c.clear();
                let h = heap.pop_all_eq(&mut batch_h);
                let c = cal.pop_all_eq(&mut batch_c);
                assert_eq!(
                    h.map(|t| t.value().to_bits()),
                    c.map(|t| t.value().to_bits()),
                    "batch time diverged at step {i}"
                );
                assert_eq!(batch_h, batch_c, "batch contents diverged at step {i}");
            }
        }
        assert_eq!(heap.len(), cal.len(), "len diverged at step {i}");
    }
    loop {
        let h = heap.pop();
        let c = cal.pop();
        assert_eq!(
            h.map(|(t, p)| (t.value().to_bits(), p)),
            c.map(|(t, p)| (t.value().to_bits(), p)),
            "drain tail diverged"
        );
        if h.is_none() {
            break;
        }
    }
}

proptest! {
    /// Arbitrary interleavings: every observable (pop order, peeks,
    /// batch drains, lengths) is bit-identical between backends.
    #[test]
    fn backends_agree_on_random_interleavings(
        ops in proptest::collection::vec((0u8..8, 0u8..16), 1..200),
    ) {
        assert_lockstep(&decode(&ops));
    }

    /// Bulk load then full drain — the sweep-driver shape: thousands of
    /// pushes clustered in a narrow window (forcing calendar rebuilds)
    /// followed by a monotone drain.
    #[test]
    fn backends_agree_on_bulk_load_then_drain(
        sels in proptest::collection::vec(0u8..16, 1..600),
    ) {
        let mut steps: Vec<Step> = Vec::with_capacity(sels.len() * 2);
        let mut wm = 0.0f64;
        for &sel in &sels {
            let t = time_of(sel, wm);
            if t > wm {
                wm = t;
            }
            steps.push(Step::Push(t));
        }
        for _ in 0..sels.len() {
            steps.push(Step::Pop);
        }
        assert_lockstep(&steps);
    }

    /// The executor's exact usage pattern: batch drains interleaved with
    /// pushes at or after the batch timestamp (completion events), plus
    /// occasional past-time pushes (resync candidates).
    #[test]
    fn backends_agree_on_event_loop_pattern(
        rounds in proptest::collection::vec((1u8..6, 0u8..16, 0u8..16), 1..80),
    ) {
        let mut steps: Vec<Step> = Vec::new();
        let mut wm = 0.0f64;
        for &(n, a, b) in &rounds {
            for _ in 0..n {
                let t = time_of(a, wm);
                if t > wm {
                    wm = t;
                }
                steps.push(Step::Push(t));
            }
            let t = time_of(b, wm);
            if t > wm {
                wm = t;
            }
            steps.push(Step::Push(t));
            steps.push(Step::Peek);
            steps.push(Step::PopAllEq);
        }
        steps.push(Step::PopAllEq);
        steps.push(Step::PopAllEq);
        assert_lockstep(&steps);
    }

    /// Reset-and-reuse (the arena lifecycle): a recycled queue behaves
    /// exactly like a fresh one, wheel geometry notwithstanding.
    #[test]
    fn reset_queues_stay_equivalent(
        first in proptest::collection::vec((0u8..8, 0u8..16), 1..80),
        second in proptest::collection::vec((0u8..8, 0u8..16), 1..80),
    ) {
        // Round 1 on fresh queues, round 2 on reset ones — compare the
        // reset pair against a brand-new pair on the same script.
        let mut heap: EventQueue<u32> = EventQueue::unmonitored(QueueBackend::Heap);
        let mut cal: EventQueue<u32> = EventQueue::unmonitored(QueueBackend::Calendar);
        let mut payload = 0u32;
        for step in decode(&first) {
            if let Step::Push(t) = step {
                heap.push(Secs(t), payload);
                cal.push(Secs(t), payload);
                payload += 1;
            } else {
                let _ = (heap.pop(), cal.pop());
            }
        }
        heap.reset(QueueBackend::Heap);
        cal.reset(QueueBackend::Calendar);
        let mut fresh_h: EventQueue<u32> = EventQueue::unmonitored(QueueBackend::Heap);
        let mut fresh_c: EventQueue<u32> = EventQueue::unmonitored(QueueBackend::Calendar);
        let mut p = 0u32;
        for step in decode(&second) {
            match step {
                Step::Push(t) => {
                    for q in [&mut heap, &mut cal, &mut fresh_h, &mut fresh_c] {
                        q.push(Secs(t), p);
                    }
                    p += 1;
                }
                _ => {
                    let pops: Vec<_> = [&mut heap, &mut cal, &mut fresh_h, &mut fresh_c]
                        .map(|q| q.pop().map(|(t, v)| (t.value().to_bits(), v)))
                        .into_iter()
                        .collect();
                    prop_assert!(
                        pops.iter().all(|x| *x == pops[0]),
                        "reset queue diverged from fresh: {pops:?}"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Replay tests for the shrunk regressions committed in
// `queue_equivalence.proptest-regressions`. Each reproduces, in minimal
// explicit form, a script that once distinguished a calendar-queue
// candidate from the reference heap during development; keeping them as
// named tests means they run under every backend change even where the
// proptest regression file is not consulted.
// ---------------------------------------------------------------------

/// Equal-time FIFO across a batch boundary: a push at the timestamp
/// that was just batch-drained must pop *after* nothing (the batch took
/// everything), not resurrect into the old batch. Caught a candidate
/// that left same-day entries behind after `swap_remove` reordering.
#[test]
fn regression_fifo_across_batch_boundary() {
    assert_lockstep(&[
        Step::Push(1.0),
        Step::Push(1.0),
        Step::PopAllEq,
        Step::Push(1.0),
        Step::Push(2.0),
        Step::PopAllEq,
        Step::PopAllEq,
    ]);
}

/// Signed-zero batch: `-0.0` and `0.0` are one batch (they are `==`)
/// led by `-0.0` (the `total_cmp` minimum), FIFO within each sign.
/// Caught a candidate that keyed buckets by `to_bits`, splitting the
/// zeros into two batches.
#[test]
fn regression_signed_zero_single_batch() {
    assert_lockstep(&[
        Step::Push(0.0),
        Step::Push(-0.0),
        Step::Push(0.0),
        Step::Peek,
        Step::PopAllEq,
        Step::Pop,
    ]);
}

/// Past-time push after a horizon-busting jump: the wheel must pull its
/// cursor back below an already-visited day. Caught a candidate whose
/// cursor only moved forward, losing (skipping) the past event until a
/// rebuild happened to rescue it.
#[test]
fn regression_past_push_after_far_jump() {
    assert_lockstep(&[
        Step::Push(0.5),
        Step::Push(1.0e6),
        Step::Pop,        // 0.5
        Step::Push(0.25), // in the past, below the popped watermark
        Step::Peek,
        Step::Pop, // must be 0.25, not 1e6
        Step::Pop,
        Step::Pop,
    ]);
}

/// Zero-dt events on the watermark plus empty-queue pops: draining past
/// empty and pushing again must keep sequence numbering (and thus FIFO
/// order) aligned between backends.
#[test]
fn regression_zero_dt_and_empty_pops() {
    assert_lockstep(&[
        Step::Pop, // empty
        Step::Push(0.0625),
        Step::Push(0.0625),
        Step::Pop,
        Step::Pop,
        Step::Pop,      // empty again
        Step::PopAllEq, // empty batch
        Step::Push(0.0625),
        Step::Push(42.0),
        Step::PopAllEq,
        Step::Pop,
    ]);
}

/// Overflow-spill ordering: events beyond the horizon spill to the
/// overflow heap; when the wheel drains, the reanchor must interleave
/// them back in exact `(time, seq)` order — including duplicates that
/// straddle the spill boundary.
#[test]
fn regression_overflow_interleaves_duplicates() {
    assert_lockstep(&[
        Step::Push(2.5),
        Step::Push(3.0e6),
        Step::Push(1.0e6),
        Step::Push(1.0e6),
        Step::Push(2.5),
        Step::Pop,
        Step::Pop,
        Step::PopAllEq, // the two 1e6 events, insertion order
        Step::Pop,
        Step::Pop,
    ]);
}
