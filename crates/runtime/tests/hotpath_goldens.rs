//! Behavior-preservation goldens for the DES hot path.
//!
//! The operand-cache, incremental-`expected_end` and allocation-reuse
//! changes inside the simulator must not alter a single scheduling
//! decision. These tests pin makespan and total energy of seeded random
//! DAGs under dmdas to values captured from the pre-refactor executor
//! (bit-exact: the simulator is deterministic, so any behavioral drift
//! shows up as a changed 17-digit float). A separate pass checks
//! run-to-run determinism, which the `sanitize` CI leg re-executes with
//! the runtime's dynamic invariant checks armed.

// Test helpers may unwrap (clippy's allow-unwrap-in-tests does not
// reach helper fns in integration-test files).
#![allow(clippy::unwrap_used)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ugpc_hwsim::{Bytes, Node, PlatformId};
use ugpc_runtime::{
    simulate, AccessMode, DataRegistry, KernelKind, SimOptions, TaskDesc, TaskGraph,
};

/// A seeded random DAG over a shared pool of tiles: mixed kernel kinds
/// (including the CPU-only diagonal factorizations), mixed access modes,
/// so RAW/WAW/WAR inference produces irregular dependency structure.
fn random_graph(seed: u64, n_tasks: usize, reg: &mut DataRegistry) -> TaskGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let nb = 960;
    let n_data: usize = 24;
    let pool: Vec<_> = (0..n_data)
        .map(|_| reg.register(Bytes((nb * nb * 8) as f64)))
        .collect();
    let mut g = TaskGraph::new();
    for _ in 0..n_tasks {
        let kind = KernelKind::ALL[rng.gen_range(0..KernelKind::ALL.len())];
        let mut t = TaskDesc::new(kind, ugpc_hwsim::Precision::Double, nb)
            .with_priority(rng.gen_range(0..4i32));
        let accesses = rng.gen_range(1..4usize);
        for _ in 0..accesses {
            let mode = match rng.gen_range(0..3u32) {
                0 => AccessMode::Read,
                1 => AccessMode::Write,
                _ => AccessMode::ReadWrite,
            };
            t = t.access(pool[rng.gen_range(0..n_data)], mode);
        }
        g.submit(t);
    }
    g
}

fn run(seed: u64, platform: PlatformId) -> (f64, f64) {
    let mut node = Node::new(platform);
    let mut reg = DataRegistry::new();
    let g = random_graph(seed, 120, &mut reg);
    let trace = simulate(&mut node, &g, &mut reg, SimOptions::default());
    (trace.makespan.value(), trace.total_energy().value())
}

/// Golden values captured from the pre-refactor simulator (PR 2). If a
/// hot-path change is behavior-preserving these match to the last bit;
/// print-and-update is NOT the fix for a mismatch — the refactor is.
const GOLDENS: [(u64, PlatformId, f64, f64); 4] = [
    (
        1,
        PlatformId::Amd4A100,
        0.23234239646645652,
        80.70387650740463,
    ),
    (
        2,
        PlatformId::Amd4A100,
        0.2076384540214562,
        72.11357903267012,
    ),
    (
        3,
        PlatformId::Intel2V100,
        0.24482054163322434,
        63.720554141327824,
    ),
    (
        4,
        PlatformId::Amd2A100,
        0.46241659200402196,
        136.13351718238192,
    ),
];

#[test]
fn random_dags_match_pre_refactor_goldens() {
    let measured: Vec<(f64, f64)> = GOLDENS
        .iter()
        .map(|&(seed, platform, _, _)| run(seed, platform))
        .collect();
    for (&(seed, platform, _, _), &(m, e)) in GOLDENS.iter().zip(&measured) {
        println!("({seed}, PlatformId::{platform:?}, {m:?}, {e:?}),");
    }
    for (&(seed, platform, makespan, energy), &(m, e)) in GOLDENS.iter().zip(&measured) {
        assert_eq!(
            m.to_bits(),
            makespan.to_bits(),
            "seed {seed} on {platform}: makespan {m:?} != golden {makespan:?}"
        );
        assert_eq!(
            e.to_bits(),
            energy.to_bits(),
            "seed {seed} on {platform}: energy {e:?} != golden {energy:?}"
        );
    }
}

#[test]
fn random_dags_are_deterministic_across_runs() {
    for seed in 0..12u64 {
        let a = run(seed, PlatformId::Amd4A100);
        let b = run(seed, PlatformId::Amd4A100);
        assert_eq!(a, b, "seed {seed} not reproducible");
    }
}
