//! Execution traces and run-level statistics.
//!
//! The aggregates in [`RunTrace`] are no longer computed by the executor:
//! [`TraceBuilder`] reconstructs them — bit-identically — from the event
//! stream of [`crate::observer`].

use crate::observer::{ExecEvent, Observer, RunContext, RunSummary};
use crate::task::TaskId;
use crate::worker::{Worker, WorkerId, WorkerKind};
use serde::{Deserialize, Serialize};
use ugpc_hwsim::{Efficiency, EnergyReading, FlopRate, Flops, Joules, Secs};

/// One executed task, for Gantt-style inspection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    pub task: TaskId,
    pub worker: WorkerId,
    pub start: Secs,
    pub end: Secs,
}

/// The outcome of one simulated application run: timing, per-worker
/// statistics and the paper's measurement (total energy of all devices).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunTrace {
    /// End-to-end execution time (virtual).
    pub makespan: Secs,
    /// Total useful flops executed.
    pub total_flops: Flops,
    /// Whole-node energy measurement over the run window (§IV-C).
    pub energy: EnergyReading,
    /// Per-worker busy time.
    pub worker_busy: Vec<Secs>,
    /// Per-worker task counts.
    pub worker_tasks: Vec<usize>,
    /// Per-worker executed flops.
    pub worker_flops: Vec<Flops>,
    /// Tasks that ran on CPU cores vs GPUs.
    pub cpu_tasks: usize,
    pub gpu_tasks: usize,
    /// Replicas dropped from GPU memory to make room (LRU eviction).
    pub evictions: usize,
    /// Evictions of sole owners that required a device-to-host writeback.
    pub writebacks: usize,
    /// Per-task records (empty unless record-keeping was enabled).
    pub records: Vec<TaskRecord>,
}

impl RunTrace {
    /// Achieved rate in flop/s — the paper's "performance".
    pub fn perf(&self) -> FlopRate {
        self.total_flops / self.makespan
    }

    /// Total energy of all processing units.
    pub fn total_energy(&self) -> Joules {
        self.energy.total()
    }

    /// Energy efficiency in flop/s/W (Gflop/s/W in displays) — the
    /// paper's headline metric.
    pub fn efficiency(&self) -> Efficiency {
        Efficiency::from_work_energy(self.total_flops, self.total_energy())
    }

    /// Fraction of tasks that ran on CPU workers.
    pub fn cpu_task_fraction(&self) -> f64 {
        let total = self.cpu_tasks + self.gpu_tasks;
        if total == 0 {
            0.0
        } else {
            self.cpu_tasks as f64 / total as f64
        }
    }

    /// Busy fraction of one worker over the makespan.
    pub fn utilization(&self, worker: WorkerId) -> f64 {
        if self.makespan.value() == 0.0 {
            0.0
        } else {
            self.worker_busy[worker] / self.makespan
        }
    }

    /// Compact textual Gantt chart (one row per worker) for debugging;
    /// requires record-keeping.
    pub fn gantt(&self, workers: &[Worker], columns: usize) -> String {
        let mut out = String::new();
        if self.records.is_empty() || self.makespan.value() == 0.0 {
            return out;
        }
        let scale = columns as f64 / self.makespan.value();
        for w in workers {
            let mut row = vec![' '; columns];
            for r in self.records.iter().filter(|r| r.worker == w.id) {
                let a = (r.start.value() * scale) as usize;
                let b = ((r.end.value() * scale) as usize).min(columns.saturating_sub(1));
                let ch = match w.kind {
                    WorkerKind::Gpu { .. } => '#',
                    WorkerKind::CpuCore { .. } => '+',
                };
                for cell in row.iter_mut().take(b + 1).skip(a) {
                    *cell = ch;
                }
            }
            out.push_str(&format!("{:>8} |", w.short_name()));
            out.extend(row);
            out.push('\n');
        }
        out
    }
}

/// The observer that rebuilds [`RunTrace`] from the event stream.
///
/// Accumulation mirrors the old in-loop counters exactly: busy time adds
/// the raw device `duration` (not `end - start`, which re-rounds in f64),
/// per-worker vectors update in event order (the executor's scheduling
/// order), and the makespan/energy pair is copied from the executor's
/// [`RunSummary`] — so the resulting trace is bit-identical to what the
/// executor used to assemble inline.
#[derive(Debug, Default)]
pub struct TraceBuilder {
    keep_records: bool,
    gpu_worker: Vec<bool>,
    total_flops: Flops,
    worker_busy: Vec<Secs>,
    worker_tasks: Vec<usize>,
    worker_flops: Vec<Flops>,
    cpu_tasks: usize,
    gpu_tasks: usize,
    evictions: usize,
    writebacks: usize,
    records: Vec<TaskRecord>,
    summary: Option<RunSummary>,
}

impl TraceBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// The finished trace. Panics if the run never completed (no
    /// `on_finish` was delivered).
    pub fn into_trace(self) -> RunTrace {
        let summary = self
            .summary
            .expect("TraceBuilder::into_trace before the run finished");
        RunTrace {
            makespan: summary.makespan,
            total_flops: self.total_flops,
            energy: summary.energy,
            worker_busy: self.worker_busy,
            worker_tasks: self.worker_tasks,
            worker_flops: self.worker_flops,
            cpu_tasks: self.cpu_tasks,
            gpu_tasks: self.gpu_tasks,
            evictions: self.evictions,
            writebacks: self.writebacks,
            records: self.records,
        }
    }
}

impl Observer for TraceBuilder {
    fn on_start(&mut self, ctx: &RunContext<'_>) {
        self.keep_records = ctx.options.keep_records;
        self.gpu_worker = ctx.workers.iter().map(Worker::is_gpu).collect();
        self.total_flops = ctx.graph.total_flops();
        self.worker_busy = vec![Secs::ZERO; ctx.workers.len()];
        self.worker_tasks = vec![0; ctx.workers.len()];
        self.worker_flops = vec![Flops::ZERO; ctx.workers.len()];
    }

    fn on_event(&mut self, event: &ExecEvent) {
        match *event {
            ExecEvent::TaskEnd {
                task,
                worker,
                start,
                end,
                duration,
                flops,
                ..
            } => {
                self.worker_busy[worker] += duration;
                self.worker_tasks[worker] += 1;
                self.worker_flops[worker] += flops;
                if self.gpu_worker[worker] {
                    self.gpu_tasks += 1;
                } else {
                    self.cpu_tasks += 1;
                }
                if self.keep_records {
                    self.records.push(TaskRecord {
                        task,
                        worker,
                        start,
                        end,
                    });
                }
            }
            ExecEvent::Eviction { .. } => self.evictions += 1,
            ExecEvent::Writeback { .. } => self.writebacks += 1,
            _ => {}
        }
    }

    fn on_finish(&mut self, summary: &RunSummary) {
        self.summary = Some(summary.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_trace() -> RunTrace {
        RunTrace {
            makespan: Secs(10.0),
            total_flops: Flops(4e12),
            energy: EnergyReading {
                duration: Secs(10.0),
                per_cpu: vec![Joules(400.0)],
                per_gpu: vec![Joules(600.0), Joules(1000.0)],
            },
            worker_busy: vec![Secs(5.0), Secs(10.0)],
            worker_tasks: vec![3, 7],
            worker_flops: vec![Flops(1e12), Flops(3e12)],
            cpu_tasks: 3,
            gpu_tasks: 7,
            evictions: 0,
            writebacks: 0,
            records: vec![
                TaskRecord {
                    task: 0,
                    worker: 0,
                    start: Secs(0.0),
                    end: Secs(5.0),
                },
                TaskRecord {
                    task: 1,
                    worker: 1,
                    start: Secs(0.0),
                    end: Secs(10.0),
                },
            ],
        }
    }

    #[test]
    fn derived_metrics() {
        let t = demo_trace();
        assert!((t.perf().as_gflops() - 400.0).abs() < 1e-9);
        assert_eq!(t.total_energy(), Joules(2000.0));
        // 4e12 flop / 2000 J = 2 Gflop/s/W.
        assert!((t.efficiency().as_gflops_per_watt() - 2.0).abs() < 1e-9);
        assert!((t.cpu_task_fraction() - 0.3).abs() < 1e-12);
        assert_eq!(t.utilization(0), 0.5);
        assert_eq!(t.utilization(1), 1.0);
    }

    #[test]
    fn gantt_renders() {
        let t = demo_trace();
        let workers = vec![
            Worker {
                id: 0,
                kind: WorkerKind::CpuCore {
                    package: 0,
                    core: 0,
                },
            },
            Worker {
                id: 1,
                kind: WorkerKind::Gpu { device: 0 },
            },
        ];
        let g = t.gantt(&workers, 20);
        assert!(g.contains("cpu0.0"));
        assert!(g.contains("gpu0"));
        assert!(g.contains('+'));
        assert!(g.contains('#'));
    }
}
