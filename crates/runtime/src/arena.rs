//! Per-run scratch arena for the virtual-time executor.
//!
//! Every `simulate_observed` call needs the same family of working
//! vectors (worker drain times, ready frontier, in-degree counters, the
//! event and resync queues, …). Allocating them per run made the DES
//! core allocation-bound under sweeps, where thousands of short
//! simulations execute back to back. [`RunArena`] owns all of that
//! scratch; [`with_run_arena`] checks the thread's arena out, and the
//! executor resets each field to its run-initial state before use — so
//! a run observes exactly what a fresh allocation would have held,
//! while the backing buffers (and the event queue's bucket wheel) are
//! reused across runs.
//!
//! Reuse is outcome-neutral by construction: every field is
//! `clear()`ed/refilled or `reset()` before the run reads it, and the
//! hotpath goldens + backend differentials pin that no run can tell a
//! recycled arena from a cold one. The arena is thread-local, so the
//! work-stealing sweep driver gets one per worker thread with no
//! synchronization on the hot path.

use crate::control::SimEvent;
use crate::des::EventQueue;
use crate::task::{Footprint, TaskId};
use crate::worker::{Worker, WorkerId};
use std::cell::RefCell;
use ugpc_hwsim::Secs;

/// All per-run executor scratch, reusable across runs.
pub struct RunArena {
    /// Worker table for the node under simulation.
    pub workers: Vec<Worker>,
    /// Task-capable cores per CPU package.
    pub capable_cores: Vec<usize>,
    /// Actual queue-drain time per worker.
    pub worker_free: Vec<Secs>,
    /// Model-predicted queue end per worker (StarPU's `expected_end`).
    pub worker_expected: Vec<Secs>,
    /// Host-to-device DMA engine availability, per GPU.
    pub h2d_free: Vec<Secs>,
    /// Device-to-host DMA engine availability, per GPU.
    pub d2h_free: Vec<Secs>,
    /// Which worker ran each task (`usize::MAX` = not yet placed).
    pub task_worker: Vec<usize>,
    /// Remaining unmet dependencies per task.
    pub indeg: Vec<usize>,
    /// The ready frontier.
    pub ready: Vec<TaskId>,
    /// Scheduler-ordered batch being committed this round.
    pub batch: Vec<TaskId>,
    /// Events landing at the current timestamp (task completions
    /// interleaved with control traffic).
    pub completed: Vec<SimEvent>,
    /// Distinct performance-model footprints in the graph (sorted).
    pub footprints: Vec<Footprint>,
    /// Footprints still needing calibration runs.
    pub missing: Vec<Footprint>,
    /// The run's event queue: task completions plus control-plane
    /// re-caps and ticks, all in one time-ordered stream.
    pub events: EventQueue<SimEvent>,
    /// Idle-worker `expected_end` resync candidates.
    pub resync: EventQueue<WorkerId>,
}

impl RunArena {
    pub fn new() -> Self {
        use crate::des::QueueBackend;
        RunArena {
            workers: Vec::new(),
            capable_cores: Vec::new(),
            worker_free: Vec::new(),
            worker_expected: Vec::new(),
            h2d_free: Vec::new(),
            d2h_free: Vec::new(),
            task_worker: Vec::new(),
            indeg: Vec::new(),
            ready: Vec::new(),
            batch: Vec::new(),
            completed: Vec::new(),
            footprints: Vec::new(),
            missing: Vec::new(),
            events: EventQueue::with_backend(QueueBackend::default()),
            resync: EventQueue::unmonitored(QueueBackend::default()),
        }
    }
}

impl Default for RunArena {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    static ARENA: RefCell<RunArena> = RefCell::new(RunArena::new());
}

/// Run `f` with this thread's arena checked out. Re-entrant calls (an
/// observer that starts a nested simulation) fall back to a fresh
/// arena rather than aliasing the one already in use.
pub fn with_run_arena<R>(f: impl FnOnce(&mut RunArena) -> R) -> R {
    ARENA.with(|cell| match cell.try_borrow_mut() {
        Ok(mut arena) => f(&mut arena),
        Err(_) => f(&mut RunArena::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_reuses_across_checkouts() {
        with_run_arena(|a| {
            a.ready.push(1);
            a.ready.push(2);
        });
        // Same thread, same arena: capacity survives, contents are the
        // caller's responsibility to reset (the executor always does).
        with_run_arena(|a| {
            assert!(a.ready.capacity() >= 2);
            a.ready.clear();
        });
    }

    #[test]
    fn reentrant_checkout_gets_a_fresh_arena() {
        with_run_arena(|outer| {
            outer.ready.push(7);
            with_run_arena(|inner| {
                assert!(inner.ready.is_empty(), "nested checkout must not alias");
                inner.ready.push(8);
            });
            assert_eq!(outer.ready, vec![7]);
            outer.ready.clear();
        });
    }
}
