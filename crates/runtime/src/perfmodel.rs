//! History-based performance models, StarPU-style (§III-B).
//!
//! StarPU estimates task execution times from a per-(footprint, worker)
//! history of observed runs, built by a few calibration runs and refined
//! online. Crucially for the paper, **models are recalibrated after every
//! power-cap change**, which is how the dm/dmda/dmdas schedulers become
//! implicitly cap-aware: a capped GPU simply advertises longer predicted
//! times and receives fewer tasks.
//!
//! Alongside time, each entry also tracks observed energy, enabling the
//! energy-aware scheduler extension.

use crate::task::Footprint;
use crate::worker::{Worker, WorkerId, WorkerKind};
use std::collections::HashMap;
use ugpc_hwsim::{Joules, Node, Secs};

/// Streaming mean/variance (Welford) of observed samples.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Stats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Stats {
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }
}

#[derive(Debug, Clone, Default)]
struct Entry {
    time: Stats,
    energy: Stats,
}

/// The per-worker history model.
#[derive(Debug, Clone, Default)]
pub struct PerfModel {
    table: HashMap<(Footprint, WorkerId), Entry>,
    /// Samples required before an entry is considered calibrated
    /// (StarPU's `calibrate_minimum`, default 10; we default to 4).
    min_samples: u64,
    /// Multiplicative noise applied to calibration samples (relative
    /// standard deviation) — models real measurement jitter. 0 = exact.
    noise: f64,
    noise_state: u64,
}

impl PerfModel {
    pub fn new() -> Self {
        PerfModel {
            table: HashMap::new(),
            min_samples: 4,
            noise: 0.0,
            noise_state: 0x9E3779B97F4A7C15,
        }
    }

    pub fn with_min_samples(mut self, n: u64) -> Self {
        self.min_samples = n.max(1);
        self
    }

    /// Apply seeded multiplicative noise to calibration samples — on real
    /// hardware, history entries carry measurement jitter; this lets the
    /// ablations quantify how much scheduling quality depends on model
    /// accuracy.
    pub fn with_calibration_noise(mut self, relative_sigma: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&relative_sigma),
            "sigma {relative_sigma}"
        );
        self.noise = relative_sigma;
        self.noise_state = seed | 1;
        self
    }

    /// A deterministic noise factor around 1.0 (uniform in
    /// `[1−σ√3, 1+σ√3]`, matching the requested standard deviation).
    fn noise_factor(&mut self) -> f64 {
        if self.noise == 0.0 {
            return 1.0;
        }
        // xorshift64*
        let mut x = self.noise_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.noise_state = x;
        let u = (x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 / (1u64 << 53) as f64;
        let half_width = self.noise * 3.0f64.sqrt();
        (1.0 + (2.0 * u - 1.0) * half_width).max(0.05)
    }

    /// Record an observed execution.
    pub fn observe(&mut self, fp: Footprint, worker: WorkerId, time: Secs, energy: Joules) {
        let e = self.table.entry((fp, worker)).or_default();
        e.time.push(time.value());
        e.energy.push(energy.value());
    }

    /// Expected execution time, if history exists for this exact key.
    pub fn expected_time(&self, fp: Footprint, worker: WorkerId) -> Option<Secs> {
        self.table.get(&(fp, worker)).map(|e| Secs(e.time.mean()))
    }

    /// Expected energy of one execution, if history exists.
    pub fn expected_energy(&self, fp: Footprint, worker: WorkerId) -> Option<Joules> {
        self.table
            .get(&(fp, worker))
            .map(|e| Joules(e.energy.mean()))
    }

    /// Expected time with a cubic-scaling regression fallback: when the
    /// exact tile size was never observed on this worker, extrapolate from
    /// another observed size of the same kernel via `t ∝ nb³` (StarPU's
    /// `STARPU_REGRESSION_BASED` model with the natural GEMM exponent).
    pub fn expected_time_or_extrapolate(&self, fp: Footprint, worker: WorkerId) -> Option<Secs> {
        if let Some(t) = self.expected_time(fp, worker) {
            return Some(t);
        }
        // Nearest observed nb for the same (kind, precision, worker).
        self.table
            .iter()
            .filter(|((f, w), _)| *w == worker && f.kind == fp.kind && f.precision == fp.precision)
            .min_by_key(|((f, _), _)| f.nb.abs_diff(fp.nb))
            .map(|((f, _), e)| {
                let scale = (fp.nb as f64 / f.nb as f64).powi(3);
                Secs(e.time.mean() * scale)
            })
    }

    /// Is this (footprint, worker) entry calibrated?
    pub fn is_calibrated(&self, fp: Footprint, worker: WorkerId) -> bool {
        self.table
            .get(&(fp, worker))
            .is_some_and(|e| e.time.count() >= self.min_samples)
    }

    /// Number of distinct history entries.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Drop all history — the paper recalibrates "following each
    /// modification to the power capping settings".
    pub fn invalidate(&mut self) {
        self.table.clear();
    }

    /// Calibration runs: execute each footprint `min_samples` times on
    /// every capable worker *at the current power caps* and record the
    /// observations. In the simulation, a calibration run is a device
    /// estimate (deterministic), so this is exact — on real hardware it
    /// would be noisy but unbiased.
    pub fn calibrate(&mut self, node: &Node, workers: &[Worker], footprints: &[Footprint]) {
        for &fp in footprints {
            for w in workers {
                match w.kind {
                    WorkerKind::Gpu { device } => {
                        if !fp.kind.gpu_capable() {
                            continue;
                        }
                        let task = crate::task::TaskDesc::new(fp.kind, fp.precision, fp.nb);
                        let run = node.gpu(device).estimate(&task.kernel_work());
                        for _ in 0..self.min_samples {
                            let f = self.noise_factor();
                            self.observe(fp, w.id, run.time * f, run.energy() * f);
                        }
                    }
                    WorkerKind::CpuCore { package, .. } => {
                        let flops = fp.kind.flops(fp.nb);
                        let run = node.cpus()[package].estimate(flops, fp.nb, fp.precision);
                        let energy = run.core_power * run.time;
                        for _ in 0..self.min_samples {
                            let f = self.noise_factor();
                            self.observe(fp, w.id, run.time * f, energy * f);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::KernelKind;
    use crate::worker::build_workers;
    use ugpc_hwsim::{PlatformId, PlatformSpec, Precision, Watts};

    fn fp(kind: KernelKind, nb: usize) -> Footprint {
        Footprint {
            kind,
            precision: Precision::Double,
            nb,
        }
    }

    #[test]
    fn welford_stats() {
        let mut s = Stats::default();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn observe_and_query() {
        let mut m = PerfModel::new();
        let f = fp(KernelKind::Gemm, 2880);
        m.observe(f, 0, Secs(1.0), Joules(100.0));
        m.observe(f, 0, Secs(3.0), Joules(300.0));
        assert_eq!(m.expected_time(f, 0), Some(Secs(2.0)));
        assert_eq!(m.expected_energy(f, 0), Some(Joules(200.0)));
        assert_eq!(m.expected_time(f, 1), None);
        assert!(!m.is_calibrated(f, 0)); // needs 4 samples
        m.observe(f, 0, Secs(2.0), Joules(200.0));
        m.observe(f, 0, Secs(2.0), Joules(200.0));
        assert!(m.is_calibrated(f, 0));
    }

    #[test]
    fn cubic_extrapolation() {
        let mut m = PerfModel::new();
        let small = fp(KernelKind::Gemm, 1000);
        m.observe(small, 0, Secs(1.0), Joules(10.0));
        let big = fp(KernelKind::Gemm, 2000);
        let t = m.expected_time_or_extrapolate(big, 0).unwrap();
        assert!((t.value() - 8.0).abs() < 1e-9, "{t}");
        // No cross-worker or cross-kind leakage.
        assert!(m.expected_time_or_extrapolate(big, 1).is_none());
        let other = fp(KernelKind::Trsm, 2000);
        assert!(m.expected_time_or_extrapolate(other, 0).is_none());
    }

    #[test]
    fn calibration_covers_capable_workers() {
        let node = Node::new(PlatformId::Intel2V100);
        let (workers, _) = build_workers(&PlatformSpec::of(PlatformId::Intel2V100));
        let mut m = PerfModel::new();
        let fps = [fp(KernelKind::Gemm, 2880), fp(KernelKind::Potrf, 2880)];
        m.calibrate(&node, &workers, &fps);
        let gpu_worker = workers.iter().find(|w| w.is_gpu()).unwrap().id;
        let cpu_worker = workers.iter().find(|w| !w.is_gpu()).unwrap().id;
        // GEMM on both; POTRF only on CPU (no cuBLAS implementation).
        assert!(m.is_calibrated(fps[0], gpu_worker));
        assert!(m.is_calibrated(fps[0], cpu_worker));
        assert!(!m.is_calibrated(fps[1], gpu_worker));
        assert!(m.is_calibrated(fps[1], cpu_worker));
        // GPU is much faster than a single CPU core on GEMM.
        let tg = m.expected_time(fps[0], gpu_worker).unwrap();
        let tc = m.expected_time(fps[0], cpu_worker).unwrap();
        assert!(
            tc.value() / tg.value() > 20.0,
            "ratio {}",
            tc.value() / tg.value()
        );
    }

    #[test]
    fn recalibration_reflects_caps() {
        // The paper's central mechanism: after capping, calibrated times
        // on that GPU grow, so the scheduler will send it fewer tasks.
        let mut node = Node::new(PlatformId::Amd4A100);
        let (workers, _) = build_workers(&PlatformSpec::of(PlatformId::Amd4A100));
        let fps = [fp(KernelKind::Gemm, 5760)];
        let gpu0 = workers.iter().find(|w| w.is_gpu()).unwrap().id;

        let mut before = PerfModel::new();
        before.calibrate(&node, &workers, &fps);
        let t_free = before.expected_time(fps[0], gpu0).unwrap();

        node.gpu_mut(0).set_power_limit(Watts(216.0)).unwrap();
        let mut after = PerfModel::new();
        after.calibrate(&node, &workers, &fps);
        let t_capped = after.expected_time(fps[0], gpu0).unwrap();

        assert!(t_capped.value() > t_free.value() * 1.1);
    }

    #[test]
    fn noise_perturbs_calibration_reproducibly() {
        let node = Node::new(PlatformId::Intel2V100);
        let (workers, _) = build_workers(&PlatformSpec::of(PlatformId::Intel2V100));
        let fps = [fp(KernelKind::Gemm, 2880)];
        let exact = {
            let mut m = PerfModel::new();
            m.calibrate(&node, &workers, &fps);
            m.expected_time(fps[0], workers.len() - 1).unwrap()
        };
        let noisy = |seed: u64| {
            let mut m = PerfModel::new().with_calibration_noise(0.2, seed);
            m.calibrate(&node, &workers, &fps);
            m.expected_time(fps[0], workers.len() - 1).unwrap()
        };
        // Same seed: identical. Different seed: (almost surely) different.
        assert_eq!(noisy(1), noisy(1));
        assert_ne!(noisy(1), noisy(2));
        // Noise of 20 % keeps the mean within a plausible band.
        let n = noisy(1);
        assert!(
            (n.value() / exact.value() - 1.0).abs() < 0.5,
            "{n} vs {exact}"
        );
        // Zero sigma is exact.
        let mut m = PerfModel::new().with_calibration_noise(0.0, 3);
        m.calibrate(&node, &workers, &fps);
        assert_eq!(m.expected_time(fps[0], workers.len() - 1).unwrap(), exact);
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn excessive_noise_rejected() {
        let _ = PerfModel::new().with_calibration_noise(1.5, 1);
    }

    #[test]
    fn invalidate_clears_history() {
        let mut m = PerfModel::new();
        m.observe(fp(KernelKind::Gemm, 64), 0, Secs(1.0), Joules(1.0));
        assert!(!m.is_empty());
        m.invalidate();
        assert!(m.is_empty());
    }
}
