//! Deterministic discrete-event queue.
//!
//! A min-heap over `(time, sequence)` — ties in virtual time resolve in
//! insertion order, which makes every simulation run bit-reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use ugpc_hwsim::Secs;

struct Event<T> {
    time: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Event<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Event<T> {}

impl<T> PartialOrd for Event<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Event<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Min-queue of timed events with FIFO tie-breaking.
///
/// Under the `sanitize` feature, pops assert that virtual time never
/// moves backwards: once an event at time `t` has been popped, pushing
/// and popping an event earlier than `t` is an invariant violation in a
/// discrete-event simulation (the past would be rewritten).
pub struct EventQueue<T> {
    heap: BinaryHeap<Event<T>>,
    seq: u64,
    #[cfg(feature = "sanitize")]
    last_pop: f64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            #[cfg(feature = "sanitize")]
            last_pop: f64::NEG_INFINITY,
        }
    }

    pub fn push(&mut self, time: Secs, payload: T) {
        debug_assert!(time.value().is_finite(), "non-finite event time");
        self.heap.push(Event {
            time: time.value(),
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    pub fn pop(&mut self) -> Option<(Secs, T)> {
        let popped = self.heap.pop().map(|e| (Secs(e.time), e.payload));
        #[cfg(feature = "sanitize")]
        if let Some((t, _)) = &popped {
            assert!(
                t.value() >= self.last_pop,
                "sanitize: virtual time moved backwards: popped {} after {}",
                t.value(),
                self.last_pop
            );
            self.last_pop = t.value();
        }
        popped
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<Secs> {
        self.heap.peek().map(|e| Secs(e.time))
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Secs(3.0), "c");
        q.push(Secs(1.0), "a");
        q.push(Secs(2.0), "b");
        assert_eq!(q.pop(), Some((Secs(1.0), "a")));
        assert_eq!(q.pop(), Some((Secs(2.0), "b")));
        assert_eq!(q.pop(), Some((Secs(3.0), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_resolve_in_insertion_order() {
        let mut q = EventQueue::new();
        q.push(Secs(1.0), 10);
        q.push(Secs(1.0), 20);
        q.push(Secs(1.0), 30);
        assert_eq!(q.pop().unwrap().1, 10);
        assert_eq!(q.pop().unwrap().1, 20);
        assert_eq!(q.pop().unwrap().1, 30);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(Secs(5.0), ());
        assert_eq!(q.peek_time(), Some(Secs(5.0)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    // Pushing an event earlier than an already-popped one is legal for
    // the plain queue but an invariant violation under `sanitize` (a
    // simulator rewriting its own past), so the two builds assert
    // opposite outcomes on the same sequence.
    #[test]
    #[cfg(not(feature = "sanitize"))]
    fn interleaved_push_pop() {
        let mut q = EventQueue::new();
        q.push(Secs(2.0), 2);
        q.push(Secs(4.0), 4);
        assert_eq!(q.pop().unwrap().1, 2);
        q.push(Secs(1.0), 1);
        q.push(Secs(3.0), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 4);
    }

    #[test]
    #[cfg(feature = "sanitize")]
    #[should_panic(expected = "virtual time moved backwards")]
    fn sanitize_catches_time_reversal() {
        let mut q = EventQueue::new();
        q.push(Secs(2.0), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        q.push(Secs(1.0), 1);
        let _ = q.pop();
    }

    #[test]
    #[cfg(feature = "sanitize")]
    fn sanitize_allows_monotone_interleaving() {
        let mut q = EventQueue::new();
        q.push(Secs(1.0), 1);
        assert_eq!(q.pop().unwrap().1, 1);
        q.push(Secs(1.0), 10); // equal time is fine
        q.push(Secs(2.0), 2);
        assert_eq!(q.pop().unwrap().1, 10);
        assert_eq!(q.pop().unwrap().1, 2);
    }
}
