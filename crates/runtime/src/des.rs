//! Deterministic discrete-event queue with pluggable backends.
//!
//! The contract is a min-queue over `(time, sequence)` — ties in virtual
//! time resolve in insertion order, which makes every simulation run
//! bit-reproducible. Two backends implement it:
//!
//! * [`QueueBackend::Heap`] — the original `BinaryHeap` reference
//!   implementation, O(log n) per operation.
//! * [`QueueBackend::Calendar`] — an indexed calendar queue (Brown 1988):
//!   a power-of-two ring of time buckets of fixed `width`, a day cursor
//!   that only moves forward while events are pending, and an overflow
//!   heap for events beyond the wheel's horizon. Near-O(1) per operation
//!   when event times are locally clustered, which DES drain loops are.
//!
//! Both backends pop in exactly the same order — `(f64::total_cmp` on
//! time, then insertion sequence`)` — so swapping one for the other can
//! never change a simulation outcome. The queue-equivalence proptest
//! suite (`tests/queue_equivalence.rs`) drives them in lockstep, the
//! study-level differentials pin byte-identical reports, and the
//! `eventqueue` model in `ugpc-analysis` exhaustively checks the
//! tie-break protocol on an abstract wheel.
//!
//! Backend selection: explicit [`EventQueue::with_backend`], else the
//! process-wide [`set_backend_override`], else the `UGPC_QUEUE`
//! environment variable (`heap` / `calendar`), else [`QueueBackend`]'s
//! default (calendar).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU8, Ordering as AtomicOrdering};
use ugpc_hwsim::Secs;

struct Event<T> {
    time: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Event<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Event<T> {}

impl<T> PartialOrd for Event<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Event<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Which event-queue implementation backs an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueBackend {
    /// The `BinaryHeap` reference implementation.
    Heap,
    /// The indexed calendar queue (time-bucketed wheel + overflow).
    #[default]
    Calendar,
}

impl std::fmt::Display for QueueBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            QueueBackend::Heap => "heap",
            QueueBackend::Calendar => "calendar",
        })
    }
}

impl std::str::FromStr for QueueBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "heap" => Ok(QueueBackend::Heap),
            "calendar" => Ok(QueueBackend::Calendar),
            other => Err(format!(
                "unknown queue backend `{other}` (expected `heap` or `calendar`)"
            )),
        }
    }
}

/// Process-wide backend override: 0 = none, 1 = heap, 2 = calendar.
/// Mirrors the `UGPC_JOBS` / `driver::set_jobs` knob precedent: CLI flags
/// set it once at startup; everything that builds a default
/// `SimOptions` picks it up.
static BACKEND_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Set (or clear) the process-wide backend override. Takes precedence
/// over the `UGPC_QUEUE` environment variable.
pub fn set_backend_override(backend: Option<QueueBackend>) {
    let v = match backend {
        None => 0,
        Some(QueueBackend::Heap) => 1,
        Some(QueueBackend::Calendar) => 2,
    };
    BACKEND_OVERRIDE.store(v, AtomicOrdering::Relaxed);
}

impl QueueBackend {
    /// Resolve the ambient backend: override, then `UGPC_QUEUE`, then
    /// the default. Unrecognized environment values fall back to the
    /// default rather than aborting a run over a typo'd knob.
    pub fn resolve() -> QueueBackend {
        match BACKEND_OVERRIDE.load(AtomicOrdering::Relaxed) {
            1 => return QueueBackend::Heap,
            2 => return QueueBackend::Calendar,
            _ => {}
        }
        match std::env::var("UGPC_QUEUE") {
            Ok(v) => v.parse().unwrap_or_default(),
            Err(_) => QueueBackend::default(),
        }
    }
}

/// One bucketed entry in the calendar wheel. `day` is the bucket index
/// computed *at insertion* (against the then-current width), so pops can
/// filter a slot for exactly the current day even after the cursor has
/// been pulled back by a past-time push.
struct CalEntry<T> {
    day: i64,
    time: f64,
    seq: u64,
    payload: T,
}

/// Geometry floor/ceiling for the wheel (both powers of two).
const MIN_SLOTS: usize = 64;
const MAX_SLOTS: usize = 1 << 16;
/// Target load factor when retuning the bucket width on a rebuild.
const TARGET_LOAD: f64 = 0.75;
/// Width multiplier at retune: the wheel's horizon covers twice the
/// span of the live population, so pushes that run ahead of the current
/// maximum (completion times always do) tend to land in the wheel
/// instead of spilling to the overflow heap, without widening buckets
/// enough to crowd them.
const WINDOW_SLACK: f64 = 2.0;
/// Same-day occupancy of one slot that triggers a retune at pop time.
/// The push-side overload trigger compares population against slot
/// *count*, which never fires when the bucket *width* is the problem
/// (every event of a tightly-clustered simulation fell into a handful
/// of days); the pop scan is where that mistuning becomes visible.
const CROWD_LIMIT: usize = 32;
/// Clamp bucket indices so `cur_day + slots.len()` can never overflow.
/// Correctness is unaffected: entries sharing a (clamped) day are still
/// ordered by exact `(time, seq)` at pop.
const DAY_CLAMP: i64 = 1 << 62;

struct Calendar<T> {
    /// Power-of-two ring of buckets; slot for day `d` is `d & mask`.
    slots: Vec<Vec<CalEntry<T>>>,
    mask: usize,
    /// Virtual-time span of one bucket.
    width: f64,
    /// `1.0 / width`, cached: bucket assignment happens on every push
    /// and a float divide costs several times a multiply. Any monotone
    /// deterministic time→day map is correct (within-day order uses
    /// exact times), so the reciprocal's rounding is harmless.
    inv_width: f64,
    /// The day the pop cursor is currently scanning. Pushes earlier than
    /// the cursor pull it back; pops advance it.
    cur_day: i64,
    /// First day *not* representable in the wheel: pushes at
    /// `day >= horizon` spill to `overflow` until a reanchor/rebuild.
    horizon: i64,
    /// Entries currently in the wheel (not counting overflow).
    wheel_len: usize,
    /// Events beyond the horizon, kept in the reference heap order.
    overflow: BinaryHeap<Event<T>>,
    /// False until the first push anchors the cursor to its day.
    anchored: bool,
    /// Scratch for same-timestamp batch extraction.
    scratch: Vec<CalEntry<T>>,
    /// Memoized `advance_to_min` result `(day, index)`, valid until the
    /// next mutation. Makes the peek-then-pop pattern (the resync drain
    /// loop) scan once instead of twice.
    cached_min: Option<(i64, usize)>,
    /// Population at the last retune and pops since then — the rate
    /// limit for the pop-side crowd retune (see [`CROWD_LIMIT`]).
    last_retune_len: usize,
    pops_since_retune: usize,
}

impl<T> Calendar<T> {
    fn new() -> Self {
        Calendar {
            slots: (0..MIN_SLOTS).map(|_| Vec::new()).collect(),
            mask: MIN_SLOTS - 1,
            width: 1.0,
            inv_width: 1.0,
            cur_day: 0,
            horizon: MIN_SLOTS as i64,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            anchored: false,
            scratch: Vec::new(),
            cached_min: None,
            last_retune_len: 0,
            pops_since_retune: 0,
        }
    }

    fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    fn day_of(&self, time: f64) -> i64 {
        // `as` saturates, and the clamp keeps horizon arithmetic far
        // from i64::MAX.
        let d = (time * self.inv_width).floor();
        (d as i64).clamp(-DAY_CLAMP, DAY_CLAMP)
    }

    /// Reset bucket geometry around the given population, then anchor at
    /// `tmin`. Only called when every entry is in hand (`pool`), so every
    /// day is recomputed against the new width — the wheel/overflow
    /// split invariant (same time ⇒ same side) is re-established from
    /// scratch.
    fn retune(&mut self, pool: &mut Vec<Event<T>>) {
        self.last_retune_len = pool.len();
        self.pops_since_retune = 0;
        let n = pool.len().max(1);
        let slots = (n * 2)
            .next_power_of_two()
            .clamp(MIN_SLOTS, MAX_SLOTS)
            .max(self.slots.len());
        if slots != self.slots.len() {
            self.slots.resize_with(slots, Vec::new);
            self.mask = slots - 1;
        }
        let mut tmin = f64::INFINITY;
        let mut tmax = f64::NEG_INFINITY;
        for e in pool.iter() {
            tmin = tmin.min(e.time);
            tmax = tmax.max(e.time);
        }
        let span = tmax - tmin;
        if span > 0.0 {
            let w = WINDOW_SLACK * span / (TARGET_LOAD * slots as f64);
            if w.is_finite() && w > 0.0 {
                self.width = w;
                self.inv_width = 1.0 / w;
            }
        }
        self.cur_day = if tmin.is_finite() {
            self.day_of(tmin)
        } else {
            0
        };
        self.horizon = self.cur_day.saturating_add(slots as i64);
        self.anchored = true;
        for e in pool.drain(..) {
            let day = self.day_of(e.time);
            if day >= self.horizon {
                self.overflow.push(e);
            } else {
                self.slots[(day & self.mask as i64) as usize].push(CalEntry {
                    day,
                    time: e.time,
                    seq: e.seq,
                    payload: e.payload,
                });
                self.wheel_len += 1;
            }
        }
    }

    /// Drain everything (wheel + overflow) into one pool and retune —
    /// used when the wheel overloads (`wheel_len > 2 * slots`) and when
    /// the wheel runs dry with events still in overflow.
    fn rebuild(&mut self) {
        self.cached_min = None;
        let mut pool: Vec<Event<T>> = Vec::with_capacity(self.len());
        for slot in &mut self.slots {
            for e in slot.drain(..) {
                pool.push(Event {
                    time: e.time,
                    seq: e.seq,
                    payload: e.payload,
                });
            }
        }
        self.wheel_len = 0;
        pool.extend(self.overflow.drain());
        self.retune(&mut pool);
    }

    fn push(&mut self, time: f64, seq: u64, payload: T) {
        self.cached_min = None;
        if !self.anchored {
            self.anchored = true;
            self.cur_day = self.day_of(time);
            self.horizon = self.cur_day.saturating_add(self.slots.len() as i64);
        }
        let day = self.day_of(time);
        if day >= self.horizon {
            self.overflow.push(Event { time, seq, payload });
            return;
        }
        if day < self.cur_day {
            // A push into the past (legal for unmonitored queues, e.g.
            // the resync candidates): pull the cursor back. Entries keep
            // their exact day, so the widened scan window stays correct.
            self.cur_day = day;
        }
        self.slots[(day & self.mask as i64) as usize].push(CalEntry {
            day,
            time,
            seq,
            payload,
        });
        self.wheel_len += 1;
        if self.wheel_len > self.slots.len() && self.slots.len() < MAX_SLOTS {
            self.rebuild();
        }
    }

    /// Advance `cur_day` to the day of the earliest wheel entry and
    /// return the index (within that day's slot) of the `(time, seq)`
    /// minimum. Pulls overflow into the wheel first if the wheel is dry.
    /// Returns `None` only when the whole queue is empty.
    fn advance_to_min(&mut self) -> Option<usize> {
        if let Some((day, i)) = self.cached_min {
            self.cur_day = day;
            return Some(i);
        }
        if self.wheel_len == 0 {
            if self.overflow.is_empty() {
                return None;
            }
            self.rebuild();
            // retune anchors at tmin, so the wheel now holds it.
        }
        let mut steps = 0usize;
        let mut may_retune = true;
        loop {
            let slot = &self.slots[(self.cur_day & self.mask as i64) as usize];
            let mut best: Option<usize> = None;
            let mut today = 0usize;
            for (i, e) in slot.iter().enumerate() {
                if e.day != self.cur_day {
                    continue;
                }
                today += 1;
                match best {
                    None => best = Some(i),
                    Some(b) => {
                        let cur = &slot[b];
                        if e.time.total_cmp(&cur.time).then(e.seq.cmp(&cur.seq)) == Ordering::Less {
                            best = Some(i);
                        }
                    }
                }
            }
            if today > CROWD_LIMIT && may_retune && self.pops_since_retune > self.last_retune_len {
                // The bucket width is too coarse for the current time
                // distribution: one day soaked up a crowd the push-side
                // overload check (population vs. slot count) cannot
                // see. Rebuild — retune recomputes the width from the
                // live population's span — and rescan. Rate limit: at
                // least as many pops as the population the geometry was
                // tuned for, so the O(n) rebuild amortizes to O(1) per
                // pop; one attempt per call because a zero-span
                // population (all-equal times) stays crowded no matter
                // the width, and the linear scan is then the best we
                // can do anyway.
                self.rebuild();
                may_retune = false;
                steps = 0;
                continue;
            }
            if let Some(i) = best {
                self.cached_min = Some((self.cur_day, i));
                return Some(i);
            }
            self.cur_day += 1;
            steps += 1;
            if steps > self.slots.len() {
                // Sparse distribution: one lap found nothing (possible
                // after a past-time push widened the window beyond one
                // wrap). Jump straight to the minimum occupied day.
                let min_day = self
                    .slots
                    .iter()
                    .flat_map(|s| s.iter().map(|e| e.day))
                    .min()
                    .expect("wheel_len > 0 implies an occupied slot");
                self.cur_day = min_day;
                steps = 0;
            }
        }
    }

    fn pop(&mut self) -> Option<(f64, T)> {
        let i = self.advance_to_min()?;
        self.cached_min = None;
        self.pops_since_retune += 1;
        let slot = &mut self.slots[(self.cur_day & self.mask as i64) as usize];
        let e = slot.swap_remove(i);
        self.wheel_len -= 1;
        Some((e.time, e.payload))
    }

    fn peek_time(&mut self) -> Option<f64> {
        let i = self.advance_to_min()?;
        let slot = &self.slots[(self.cur_day & self.mask as i64) as usize];
        Some(slot[i].time)
    }

    /// Pop the earliest entry plus every entry with an `==`-equal time,
    /// in `(total_cmp, seq)` order — exactly the sequence the heap
    /// backend would pop one by one. Equal times always share a day
    /// (`-0.0` and `0.0` both floor to day 0) and days never straddle
    /// the wheel/overflow split, so the whole batch lives in one slot.
    fn pop_all_eq(&mut self, out: &mut Vec<T>) -> Option<f64> {
        let first = self.advance_to_min()?;
        self.cached_min = None;
        let slot = &mut self.slots[(self.cur_day & self.mask as i64) as usize];
        let t = slot[first].time;
        self.scratch.clear();
        let mut i = 0;
        while i < slot.len() {
            if slot[i].day == self.cur_day && slot[i].time == t {
                self.scratch.push(slot.swap_remove(i));
            } else {
                i += 1;
            }
        }
        self.wheel_len -= self.scratch.len();
        self.pops_since_retune += self.scratch.len();
        self.scratch
            .sort_unstable_by(|a, b| a.time.total_cmp(&b.time).then(a.seq.cmp(&b.seq)));
        let lead = self.scratch[0].time;
        out.extend(self.scratch.drain(..).map(|e| e.payload));
        Some(lead)
    }

    fn clear(&mut self) {
        self.cached_min = None;
        self.last_retune_len = 0;
        self.pops_since_retune = 0;
        for slot in &mut self.slots {
            slot.clear();
        }
        self.overflow.clear();
        self.wheel_len = 0;
        self.cur_day = 0;
        self.horizon = self.slots.len() as i64;
        self.width = 1.0;
        self.inv_width = 1.0;
        self.anchored = false;
    }
}

enum BackendImpl<T> {
    Heap(BinaryHeap<Event<T>>),
    Calendar(Calendar<T>),
}

/// Min-queue of timed events with FIFO tie-breaking.
///
/// Under the `sanitize` feature, pops on a *monitored* queue assert that
/// virtual time never moves backwards: once an event at time `t` has
/// been popped, pushing and popping an event earlier than `t` is an
/// invariant violation in a discrete-event simulation (the past would
/// be rewritten). The resync-candidate queue in `sim.rs` legitimately
/// pushes into the past (stale candidates are re-checked at pop), so it
/// uses [`EventQueue::unmonitored`].
pub struct EventQueue<T> {
    backend: BackendImpl<T>,
    seq: u64,
    #[cfg(feature = "sanitize")]
    monitored: bool,
    #[cfg(feature = "sanitize")]
    last_pop: f64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// A queue on the ambient backend (see [`QueueBackend::resolve`]).
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::resolve())
    }

    pub fn with_backend(backend: QueueBackend) -> Self {
        EventQueue {
            backend: match backend {
                QueueBackend::Heap => BackendImpl::Heap(BinaryHeap::new()),
                QueueBackend::Calendar => BackendImpl::Calendar(Calendar::new()),
            },
            seq: 0,
            #[cfg(feature = "sanitize")]
            monitored: true,
            #[cfg(feature = "sanitize")]
            last_pop: f64::NEG_INFINITY,
        }
    }

    /// A queue whose pops are exempt from the sanitize monotone-time
    /// assertion (for candidate queues that legally push into the past).
    pub fn unmonitored(backend: QueueBackend) -> Self {
        #[allow(unused_mut)]
        let mut q = Self::with_backend(backend);
        #[cfg(feature = "sanitize")]
        {
            q.monitored = false;
        }
        q
    }

    pub fn backend(&self) -> QueueBackend {
        match &self.backend {
            BackendImpl::Heap(_) => QueueBackend::Heap,
            BackendImpl::Calendar(_) => QueueBackend::Calendar,
        }
    }

    /// Empty the queue for reuse (retaining allocations where the
    /// representation allows), switching representation if `backend`
    /// differs. Sequence numbering and the sanitize watermark restart
    /// from scratch, so a reset queue is observationally a fresh one.
    pub fn reset(&mut self, backend: QueueBackend) {
        match (&mut self.backend, backend) {
            (BackendImpl::Heap(h), QueueBackend::Heap) => h.clear(),
            (BackendImpl::Calendar(c), QueueBackend::Calendar) => c.clear(),
            (slot, _) => {
                *slot = match backend {
                    QueueBackend::Heap => BackendImpl::Heap(BinaryHeap::new()),
                    QueueBackend::Calendar => BackendImpl::Calendar(Calendar::new()),
                };
            }
        }
        self.seq = 0;
        #[cfg(feature = "sanitize")]
        {
            self.last_pop = f64::NEG_INFINITY;
        }
    }

    pub fn push(&mut self, time: Secs, payload: T) {
        debug_assert!(time.value().is_finite(), "non-finite event time");
        let seq = self.seq;
        self.seq += 1;
        match &mut self.backend {
            BackendImpl::Heap(h) => h.push(Event {
                time: time.value(),
                seq,
                payload,
            }),
            BackendImpl::Calendar(c) => c.push(time.value(), seq, payload),
        }
    }

    pub fn pop(&mut self) -> Option<(Secs, T)> {
        let popped = match &mut self.backend {
            BackendImpl::Heap(h) => h.pop().map(|e| (Secs(e.time), e.payload)),
            BackendImpl::Calendar(c) => c.pop().map(|(t, p)| (Secs(t), p)),
        };
        #[cfg(feature = "sanitize")]
        if let Some((t, _)) = &popped {
            self.check_monotone(t.value());
        }
        popped
    }

    /// Pop the earliest event and every event at an `==`-equal time in
    /// one pass, appending payloads to `out` in exactly the order
    /// repeated [`pop`](Self::pop) calls would produce. Returns the
    /// first popped event's time (the batch timestamp). Note `-0.0 ==
    /// 0.0`: a mixed batch leads with `-0.0` (the `total_cmp` minimum).
    pub fn pop_all_eq(&mut self, out: &mut Vec<T>) -> Option<Secs> {
        let t = match &mut self.backend {
            BackendImpl::Heap(h) => {
                let first = h.pop()?;
                let t = first.time;
                out.push(first.payload);
                while h.peek().is_some_and(|e| e.time == t) {
                    out.push(h.pop().expect("peeked event exists").payload);
                }
                t
            }
            BackendImpl::Calendar(c) => c.pop_all_eq(out)?,
        };
        #[cfg(feature = "sanitize")]
        self.check_monotone(t);
        Some(Secs(t))
    }

    #[cfg(feature = "sanitize")]
    fn check_monotone(&mut self, t: f64) {
        if !self.monitored {
            return;
        }
        assert!(
            t >= self.last_pop,
            "sanitize: virtual time moved backwards: popped {} after {}",
            t,
            self.last_pop
        );
        self.last_pop = t;
    }

    /// Time of the earliest pending event. (`&mut` because the calendar
    /// backend advances its day cursor to find the minimum — an
    /// observationally pure operation.)
    pub fn peek_time(&mut self) -> Option<Secs> {
        match &mut self.backend {
            BackendImpl::Heap(h) => h.peek().map(|e| Secs(e.time)),
            BackendImpl::Calendar(c) => c.peek_time().map(Secs),
        }
    }

    pub fn len(&self) -> usize {
        match &self.backend {
            BackendImpl::Heap(h) => h.len(),
            BackendImpl::Calendar(c) => c.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both(f: impl Fn(QueueBackend)) {
        f(QueueBackend::Heap);
        f(QueueBackend::Calendar);
    }

    #[test]
    fn pops_in_time_order() {
        both(|b| {
            let mut q = EventQueue::with_backend(b);
            q.push(Secs(3.0), "c");
            q.push(Secs(1.0), "a");
            q.push(Secs(2.0), "b");
            assert_eq!(q.pop(), Some((Secs(1.0), "a")));
            assert_eq!(q.pop(), Some((Secs(2.0), "b")));
            assert_eq!(q.pop(), Some((Secs(3.0), "c")));
            assert_eq!(q.pop(), None);
        });
    }

    #[test]
    fn ties_resolve_in_insertion_order() {
        both(|b| {
            let mut q = EventQueue::with_backend(b);
            q.push(Secs(1.0), 10);
            q.push(Secs(1.0), 20);
            q.push(Secs(1.0), 30);
            assert_eq!(q.pop().unwrap().1, 10);
            assert_eq!(q.pop().unwrap().1, 20);
            assert_eq!(q.pop().unwrap().1, 30);
        });
    }

    #[test]
    fn peek_does_not_consume() {
        both(|b| {
            let mut q = EventQueue::with_backend(b);
            q.push(Secs(5.0), ());
            assert_eq!(q.peek_time(), Some(Secs(5.0)));
            assert_eq!(q.len(), 1);
            assert!(!q.is_empty());
            q.pop();
            assert!(q.is_empty());
            assert_eq!(q.peek_time(), None);
        });
    }

    #[test]
    fn pop_all_eq_drains_one_timestamp() {
        both(|b| {
            let mut q = EventQueue::with_backend(b);
            q.push(Secs(2.0), 20);
            q.push(Secs(1.0), 10);
            q.push(Secs(1.0), 11);
            q.push(Secs(3.0), 30);
            q.push(Secs(1.0), 12);
            let mut out = Vec::new();
            assert_eq!(q.pop_all_eq(&mut out), Some(Secs(1.0)));
            assert_eq!(out, vec![10, 11, 12]);
            out.clear();
            assert_eq!(q.pop_all_eq(&mut out), Some(Secs(2.0)));
            assert_eq!(out, vec![20]);
            out.clear();
            assert_eq!(q.pop_all_eq(&mut out), Some(Secs(3.0)));
            assert_eq!(out, vec![30]);
            out.clear();
            assert_eq!(q.pop_all_eq(&mut out), None);
        });
    }

    #[test]
    fn negative_zero_batches_with_positive_zero() {
        // total_cmp orders -0.0 < 0.0 but `==` merges them: the batch
        // leads with -0.0 and contains both, FIFO within each sign.
        both(|b| {
            let mut q = EventQueue::with_backend(b);
            q.push(Secs(0.0), 1);
            q.push(Secs(-0.0), 2);
            q.push(Secs(0.0), 3);
            let mut out = Vec::new();
            let t = q.pop_all_eq(&mut out).unwrap();
            assert!(t.value() == 0.0 && t.value().is_sign_negative());
            assert_eq!(out, vec![2, 1, 3]);
            assert!(q.is_empty());
        });
    }

    #[test]
    fn calendar_spills_and_recovers_distant_events() {
        // Events far beyond the initial horizon land in overflow and
        // come back in order once the wheel drains.
        let mut q = EventQueue::with_backend(QueueBackend::Calendar);
        q.push(Secs(0.5), 0);
        q.push(Secs(1.0e6), 1);
        q.push(Secs(2.0e6), 2);
        q.push(Secs(0.25), 3);
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop().unwrap().1, 3);
        assert_eq!(q.pop().unwrap().1, 0);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert!(q.is_empty());
    }

    #[test]
    fn calendar_rebuilds_under_load() {
        // Enough same-window events to trigger the overload rebuild;
        // order must survive the redistribution.
        let mut q = EventQueue::with_backend(QueueBackend::Calendar);
        let n = 4096;
        for i in 0..n {
            q.push(Secs((i % 97) as f64 * 1e-3), i);
        }
        let mut last = (f64::NEG_INFINITY, 0u64);
        let mut popped = 0;
        while let Some((t, i)) = q.pop() {
            let key = (t.value(), i as u64);
            assert!(
                key.0 > last.0 || (key.0 == last.0 && key.1 > last.1),
                "order violated: {key:?} after {last:?}"
            );
            last = key;
            popped += 1;
        }
        assert_eq!(popped, n);
    }

    #[test]
    fn reset_switches_representation() {
        let mut q: EventQueue<u32> = EventQueue::with_backend(QueueBackend::Heap);
        assert_eq!(q.backend(), QueueBackend::Heap);
        q.push(Secs(1.0), 1);
        q.reset(QueueBackend::Calendar);
        assert_eq!(q.backend(), QueueBackend::Calendar);
        assert!(q.is_empty());
        q.push(Secs(1.0), 7);
        assert_eq!(q.pop(), Some((Secs(1.0), 7)));
        q.reset(QueueBackend::Calendar);
        assert!(q.is_empty() && q.pop().is_none());
    }

    #[test]
    fn env_and_override_resolution() {
        // The override beats everything; clearing it falls back to the
        // (unset-env) default. Serialized within this one test to avoid
        // racing other tests on the process-global.
        set_backend_override(Some(QueueBackend::Heap));
        assert_eq!(QueueBackend::resolve(), QueueBackend::Heap);
        let q: EventQueue<()> = EventQueue::new();
        assert_eq!(q.backend(), QueueBackend::Heap);
        set_backend_override(Some(QueueBackend::Calendar));
        assert_eq!(QueueBackend::resolve(), QueueBackend::Calendar);
        set_backend_override(None);
        assert_eq!("heap".parse(), Ok(QueueBackend::Heap));
        assert_eq!("calendar".parse(), Ok(QueueBackend::Calendar));
        assert!("fibonacci".parse::<QueueBackend>().is_err());
    }

    // Pushing an event earlier than an already-popped one is legal for
    // the plain queue but an invariant violation under `sanitize` (a
    // simulator rewriting its own past), so the two builds assert
    // opposite outcomes on the same sequence.
    #[test]
    #[cfg(not(feature = "sanitize"))]
    fn interleaved_push_pop() {
        both(|b| {
            let mut q = EventQueue::with_backend(b);
            q.push(Secs(2.0), 2);
            q.push(Secs(4.0), 4);
            assert_eq!(q.pop().unwrap().1, 2);
            q.push(Secs(1.0), 1);
            q.push(Secs(3.0), 3);
            assert_eq!(q.pop().unwrap().1, 1);
            assert_eq!(q.pop().unwrap().1, 3);
            assert_eq!(q.pop().unwrap().1, 4);
        });
    }

    #[test]
    #[cfg(feature = "sanitize")]
    #[should_panic(expected = "virtual time moved backwards")]
    fn sanitize_catches_time_reversal() {
        let mut q = EventQueue::with_backend(QueueBackend::Calendar);
        q.push(Secs(2.0), 2);
        assert_eq!(q.pop().unwrap().1, 2);
        q.push(Secs(1.0), 1);
        let _ = q.pop();
    }

    #[test]
    #[cfg(feature = "sanitize")]
    fn sanitize_allows_monotone_interleaving() {
        both(|b| {
            let mut q = EventQueue::with_backend(b);
            q.push(Secs(1.0), 1);
            assert_eq!(q.pop().unwrap().1, 1);
            q.push(Secs(1.0), 10); // equal time is fine
            q.push(Secs(2.0), 2);
            assert_eq!(q.pop().unwrap().1, 10);
            assert_eq!(q.pop().unwrap().1, 2);
        });
    }

    #[test]
    #[cfg(feature = "sanitize")]
    fn unmonitored_queue_tolerates_past_pushes() {
        both(|b| {
            let mut q = EventQueue::unmonitored(b);
            q.push(Secs(5.0), 5);
            assert_eq!(q.pop().unwrap().1, 5);
            q.push(Secs(1.0), 1); // in the past — fine, unmonitored
            assert_eq!(q.pop().unwrap().1, 1);
        });
    }
}
