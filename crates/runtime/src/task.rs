//! Task descriptions: the unit of scheduling.
//!
//! A task applies one tile kernel (GEMM/SYRK/TRSM/POTRF) to a set of data
//! handles with declared access modes, carries an application-assigned
//! priority (Chameleon's expert priorities, §III-C), and may be restricted
//! to a subset of worker classes — like a StarPU codelet with its
//! `cpu_funcs` / `cuda_funcs` arrays.

use crate::data::DataId;
use serde::{Deserialize, Serialize};
use ugpc_hwsim::{Bytes, Flops, KernelWork, Precision};

pub type TaskId = usize;

/// The tile kernels used by the paper's two operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum KernelKind {
    /// C ← α·A·B + β·C on nb×nb tiles: 2·nb³ flops.
    Gemm,
    /// C ← α·A·Aᵀ + β·C (symmetric rank-k update): nb³ flops.
    Syrk,
    /// Triangular solve with multiple right-hand sides: nb³ flops.
    Trsm,
    /// Cholesky factorization of a diagonal tile: nb³/3 flops.
    Potrf,
    /// LU factorization (no pivoting) of a diagonal tile: 2·nb³/3 flops.
    Getrf,
}

impl KernelKind {
    pub const ALL: [KernelKind; 5] = [
        KernelKind::Gemm,
        KernelKind::Syrk,
        KernelKind::Trsm,
        KernelKind::Potrf,
        KernelKind::Getrf,
    ];

    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Gemm => "gemm",
            KernelKind::Syrk => "syrk",
            KernelKind::Trsm => "trsm",
            KernelKind::Potrf => "potrf",
            KernelKind::Getrf => "getrf",
        }
    }

    /// Flop count on square `nb × nb` tiles.
    pub fn flops(self, nb: usize) -> Flops {
        let n = nb as f64;
        match self {
            KernelKind::Gemm => Flops(2.0 * n * n * n),
            KernelKind::Syrk => Flops(n * n * (n + 1.0)),
            KernelKind::Trsm => Flops(n * n * n),
            KernelKind::Potrf => Flops(n * n * n / 3.0),
            KernelKind::Getrf => Flops(2.0 * n * n * n / 3.0),
        }
    }

    /// Device-memory traffic on square tiles (tiles touched × nb² elems;
    /// GEMM re-reads C, hence 4).
    pub fn tile_traffic(self, nb: usize, precision: Precision) -> Bytes {
        let n = (nb * nb * precision.elem_bytes()) as f64;
        let tiles = match self {
            KernelKind::Gemm => 4.0,
            KernelKind::Syrk => 3.0,
            KernelKind::Trsm => 3.0,
            KernelKind::Potrf => 2.0,
            KernelKind::Getrf => 2.0,
        };
        Bytes(tiles * n)
    }

    /// Whether Chameleon provides a GPU (cuBLAS) implementation. The
    /// diagonal factorization kernels (POTRF, GETRF) run on CPU (LAPACK),
    /// which is what puts the factorization critical path on the CPUs
    /// (§III-C).
    pub fn gpu_capable(self) -> bool {
        !matches!(self, KernelKind::Potrf | KernelKind::Getrf)
    }

    /// All kernels have CPU implementations.
    pub fn cpu_capable(self) -> bool {
        true
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How a task accesses one of its data handles (StarPU access modes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessMode {
    Read,
    Write,
    ReadWrite,
}

impl AccessMode {
    #[inline]
    pub fn reads(self) -> bool {
        !matches!(self, AccessMode::Write)
    }

    #[inline]
    pub fn writes(self) -> bool {
        !matches!(self, AccessMode::Read)
    }
}

/// One schedulable task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskDesc {
    pub kind: KernelKind,
    pub precision: Precision,
    /// Tile dimension — the performance-model footprint key.
    pub nb: usize,
    /// Application priority; higher runs earlier under sorted schedulers.
    pub priority: i32,
    /// Accessed data handles with modes, in codelet argument order.
    pub data: Vec<(DataId, AccessMode)>,
}

impl TaskDesc {
    pub fn new(kind: KernelKind, precision: Precision, nb: usize) -> Self {
        TaskDesc {
            kind,
            precision,
            nb,
            priority: 0,
            data: Vec::new(),
        }
    }

    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }

    pub fn access(mut self, id: DataId, mode: AccessMode) -> Self {
        self.data.push((id, mode));
        self
    }

    /// Flop count of this task.
    pub fn flops(&self) -> Flops {
        self.kind.flops(self.nb)
    }

    /// The hardware-level footprint of this task's kernel.
    pub fn kernel_work(&self) -> KernelWork {
        KernelWork::new(
            self.flops(),
            self.kind.tile_traffic(self.nb, self.precision),
            self.precision,
        )
    }

    /// Performance-model key: tasks with equal keys are interchangeable
    /// for timing purposes (StarPU's footprint hash).
    pub fn footprint(&self) -> Footprint {
        Footprint {
            kind: self.kind,
            precision: self.precision,
            nb: self.nb,
        }
    }
}

/// Performance-model footprint (StarPU's `starpu_task_footprint`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Footprint {
    pub kind: KernelKind,
    pub precision: Precision,
    pub nb: usize,
}

/// The distinct footprints over `tasks`, ascending, into a caller-owned
/// buffer — the same set, in the same order, a `BTreeSet` collect would
/// produce, without the per-run node allocations.
pub fn distinct_footprints(tasks: &[TaskDesc], out: &mut Vec<Footprint>) {
    out.clear();
    out.extend(tasks.iter().map(TaskDesc::footprint));
    out.sort_unstable();
    out.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_flop_counts() {
        assert_eq!(KernelKind::Gemm.flops(100), Flops(2e6));
        assert_eq!(KernelKind::Trsm.flops(100), Flops(1e6));
        assert_eq!(KernelKind::Potrf.flops(100), Flops(1e6 / 3.0));
        assert_eq!(KernelKind::Getrf.flops(100), Flops(2e6 / 3.0));
        assert_eq!(KernelKind::Syrk.flops(100), Flops(100.0 * 100.0 * 101.0));
    }

    #[test]
    fn only_diagonal_factorizations_are_cpu_bound() {
        assert!(!KernelKind::Potrf.gpu_capable());
        assert!(!KernelKind::Getrf.gpu_capable());
        assert!(KernelKind::Gemm.gpu_capable());
        assert!(KernelKind::Syrk.gpu_capable());
        assert!(KernelKind::Trsm.gpu_capable());
        for k in KernelKind::ALL {
            assert!(k.cpu_capable());
        }
    }

    #[test]
    fn access_mode_semantics() {
        assert!(AccessMode::Read.reads() && !AccessMode::Read.writes());
        assert!(!AccessMode::Write.reads() && AccessMode::Write.writes());
        assert!(AccessMode::ReadWrite.reads() && AccessMode::ReadWrite.writes());
    }

    #[test]
    fn task_builder() {
        let t = TaskDesc::new(KernelKind::Gemm, Precision::Double, 2880)
            .with_priority(7)
            .access(0, AccessMode::Read)
            .access(1, AccessMode::Read)
            .access(2, AccessMode::ReadWrite);
        assert_eq!(t.priority, 7);
        assert_eq!(t.data.len(), 3);
        assert_eq!(t.flops(), Flops(2.0 * 2880.0f64.powi(3)));
        let w = t.kernel_work();
        assert_eq!(w.precision, Precision::Double);
        assert_eq!(w.bytes, Bytes(4.0 * 2880.0 * 2880.0 * 8.0));
    }

    #[test]
    fn footprints_group_interchangeable_tasks() {
        let a =
            TaskDesc::new(KernelKind::Gemm, Precision::Double, 2880).access(0, AccessMode::Read);
        let b =
            TaskDesc::new(KernelKind::Gemm, Precision::Double, 2880).access(5, AccessMode::Write);
        assert_eq!(a.footprint(), b.footprint());
        let c = TaskDesc::new(KernelKind::Gemm, Precision::Single, 2880);
        assert_ne!(a.footprint(), c.footprint());
        let d = TaskDesc::new(KernelKind::Gemm, Precision::Double, 1440);
        assert_ne!(a.footprint(), d.footprint());
    }
}
