//! Trace export in the Chrome trace-event format (`chrome://tracing`,
//! Perfetto) — the simulator's counterpart to StarPU's FxT/Paje traces.
//!
//! Each worker becomes a "thread"; each executed task a complete (`"X"`)
//! event with microsecond timestamps. The output opens directly in
//! `ui.perfetto.dev`.

use crate::graph::TaskGraph;
use crate::trace::RunTrace;
use crate::worker::Worker;
use std::fmt::Write as _;

/// Escape a string for a JSON literal (the subset we emit: names are
/// ASCII identifiers, but be safe anyway).
fn esc(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Render the per-task records of `trace` as a Chrome trace-event JSON
/// document. Requires the run to have kept records
/// (`SimOptions::keep_records`); returns `None` otherwise.
pub fn chrome_trace(trace: &RunTrace, graph: &TaskGraph, workers: &[Worker]) -> Option<String> {
    if trace.records.is_empty() && !graph.is_empty() {
        return None;
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    // Thread names.
    for w in workers {
        let _ = writeln!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}},",
            w.id,
            esc(&w.short_name())
        );
    }
    let mut first = true;
    for r in &trace.records {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let desc = graph.task(r.task);
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"task\":{},\"nb\":{},\"priority\":{}}}}}",
            esc(desc.kind.name()),
            desc.precision.short(),
            r.worker,
            r.start.value() * 1e6,
            (r.end - r.start).value() * 1e6,
            r.task,
            desc.nb,
            desc.priority,
        );
    }
    out.push_str("\n]}\n");
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DataRegistry;
    use crate::sim::{simulate, SimOptions};
    use crate::task::{AccessMode, KernelKind, TaskDesc};
    use ugpc_hwsim::{Bytes, Node, PlatformId, Precision};

    fn run(keep: bool) -> (RunTrace, TaskGraph, Vec<Worker>) {
        let mut node = Node::new(PlatformId::Intel2V100);
        let mut data = DataRegistry::new();
        let mut g = TaskGraph::new();
        let t = data.register(Bytes(8.0 * 960.0 * 960.0));
        for _ in 0..3 {
            g.submit(
                TaskDesc::new(KernelKind::Gemm, Precision::Double, 960)
                    .access(t, AccessMode::ReadWrite),
            );
        }
        let trace = simulate(
            &mut node,
            &g,
            &mut data,
            SimOptions {
                keep_records: keep,
                ..Default::default()
            },
        );
        let (workers, _) = crate::worker::build_workers(node.spec());
        (trace, g, workers)
    }

    #[test]
    fn exports_valid_json_shape() {
        let (trace, g, workers) = run(true);
        let json = chrome_trace(&trace, &g, &workers).expect("records kept");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        // One X event per task plus thread metadata.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 3);
        assert_eq!(json.matches("\"ph\":\"M\"").count(), workers.len());
        assert!(json.contains("\"name\":\"gemm\""));
        assert!(json.contains("\"cat\":\"dp\""));
        // Balanced braces — a cheap well-formedness smoke check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn requires_records() {
        let (trace, g, workers) = run(false);
        assert!(chrome_trace(&trace, &g, &workers).is_none());
    }

    #[test]
    fn empty_graph_exports_empty_trace() {
        let g = TaskGraph::new();
        let mut node = Node::new(PlatformId::Intel2V100);
        let mut data = DataRegistry::new();
        let trace = simulate(&mut node, &g, &mut data, SimOptions::default());
        let (workers, _) = crate::worker::build_workers(node.spec());
        let json = chrome_trace(&trace, &g, &workers).expect("empty graph is fine");
        assert!(json.contains("traceEvents"));
    }

    #[test]
    fn escaping() {
        assert_eq!(esc("plain"), "plain");
        assert_eq!(esc("a\"b"), "a\\\"b");
        assert_eq!(esc("a\\b"), "a\\\\b");
        assert_eq!(esc("a\nb"), "a\\u000ab");
    }
}
