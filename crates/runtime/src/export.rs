//! Trace export in the Chrome trace-event format (`chrome://tracing`,
//! Perfetto) — the simulator's counterpart to StarPU's FxT/Paje traces.
//!
//! [`PerfettoSink`] is an [`Observer`]: attached to a run it streams the
//! event pipeline straight into trace-event JSON — worker lanes for
//! tasks, one lane per DMA engine for transfers and writebacks, an
//! instant-event lane per GPU for evictions, and counter tracks for the
//! power samples. The output opens directly in `ui.perfetto.dev`.
//!
//! [`chrome_trace`] renders a finished [`RunTrace`]'s task records
//! through the same sink (task lanes only — the post-hoc trace does not
//! retain transfer or eviction timing).

use crate::data::MemNode;
use crate::graph::TaskGraph;
use crate::observer::{ExecEvent, Observer, RunContext};
use crate::trace::RunTrace;
use crate::worker::Worker;
use std::fmt::Write as _;
use ugpc_hwsim::Joules;

/// Why a trace could not be exported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceError {
    /// The run did not keep per-task records
    /// (`SimOptions::keep_records` / `RunConfig::with_records`).
    RecordsNotKept,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::RecordsNotKept => {
                f.write_str("the run kept no per-task records (enable keep_records)")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Escape a string into `out` as JSON string content (the subset we
/// emit: names are ASCII identifiers, but be safe anyway). One output
/// buffer, no per-character allocation.
fn esc_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Streaming Chrome trace-event / Perfetto sink over the executor event
/// stream.
///
/// Lane (`tid`) layout, with `W` workers and `G` GPUs:
/// worker `w` → `w`; GPU `g`'s h2d engine → `W + 2g`, d2h engine →
/// `W + 2g + 1`; GPU `g`'s memory-event lane → `W + 2G + g`. Engine and
/// memory lanes are named lazily, so a task-only trace carries exactly
/// one metadata record per worker.
#[derive(Debug)]
pub struct PerfettoSink {
    out: String,
    /// Whether any non-metadata event has been written (comma control).
    first: bool,
    n_workers: usize,
    n_gpus: usize,
    named_lanes: Vec<bool>,
    /// Optional (trace_id, span_id) hex pair stamped into the document
    /// as a process metadata record — set by services so an exported
    /// trace is joinable with their request logs.
    trace_ids: Option<(String, String)>,
}

impl Default for PerfettoSink {
    fn default() -> Self {
        Self::new()
    }
}

impl PerfettoSink {
    pub fn new() -> Self {
        PerfettoSink {
            out: String::new(),
            first: true,
            n_workers: 0,
            n_gpus: 0,
            named_lanes: Vec::new(),
            trace_ids: None,
        }
    }

    /// Stamp the export with a request's trace context (plain hex
    /// strings — the runtime stays agnostic of the id scheme). Must be
    /// set before the run starts; `begin` resets the output buffer, so a
    /// later call only affects the next run.
    pub fn set_trace_ids(&mut self, trace_id: &str, span_id: &str) {
        self.trace_ids = Some((trace_id.to_string(), span_id.to_string()));
    }

    /// Open the document and name the worker lanes. Called by `on_start`;
    /// [`chrome_trace`] calls it directly when replaying records.
    fn begin(&mut self, workers: &[Worker], n_gpus: usize) {
        self.out = String::from("{\"traceEvents\":[\n");
        self.first = true;
        self.n_workers = workers.len();
        self.n_gpus = n_gpus;
        self.named_lanes = vec![false; workers.len() + 3 * n_gpus];
        if let Some((trace_id, span_id)) = self.trace_ids.clone() {
            self.sep();
            let _ = write!(
                self.out,
                "{{\"name\":\"trace_context\",\"ph\":\"M\",\"pid\":1,\"args\":{{\"trace_id\":\""
            );
            esc_into(&mut self.out, &trace_id);
            self.out.push_str("\",\"span_id\":\"");
            esc_into(&mut self.out, &span_id);
            self.out.push_str("\"}}");
        }
        for w in workers {
            self.name_lane(w.id, &w.short_name());
        }
    }

    fn sep(&mut self) {
        if !self.first {
            self.out.push_str(",\n");
        }
        self.first = false;
    }

    fn name_lane(&mut self, tid: usize, name: &str) {
        self.sep();
        let _ = write!(
            self.out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\""
        );
        esc_into(&mut self.out, name);
        self.out.push_str("\"}}");
        if let Some(named) = self.named_lanes.get_mut(tid) {
            *named = true;
        }
    }

    /// DMA-engine lane for one endpoint pair, named on first use.
    fn engine_lane(&mut self, src: MemNode, dst: MemNode) -> usize {
        let (tid, name) = match (src, dst) {
            (_, MemNode::Gpu(g)) => (self.n_workers + 2 * g, format!("h2d{g}")),
            (MemNode::Gpu(g), _) => (self.n_workers + 2 * g + 1, format!("d2h{g}")),
            (MemNode::Host, MemNode::Host) => (self.n_workers, "host".to_string()),
        };
        if !self.named_lanes.get(tid).copied().unwrap_or(true) {
            self.name_lane(tid, &name);
        }
        tid
    }

    fn mem_lane(&mut self, device: usize) -> usize {
        let tid = self.n_workers + 2 * self.n_gpus + device;
        if !self.named_lanes.get(tid).copied().unwrap_or(true) {
            self.name_lane(tid, &format!("mem{device}"));
        }
        tid
    }

    /// A complete (`"X"`) event. Timestamps in µs, like the format wants.
    fn complete(
        &mut self,
        name: &str,
        cat: &str,
        tid: usize,
        start_s: f64,
        dur_s: f64,
        args: &str,
    ) {
        self.sep();
        let _ = write!(self.out, "{{\"name\":\"");
        esc_into(&mut self.out, name);
        let _ = write!(
            self.out,
            "\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{{}}}}}",
            cat,
            tid,
            start_s * 1e6,
            dur_s * 1e6,
            args,
        );
    }

    /// The finished JSON document.
    pub fn into_json(mut self) -> String {
        if self.out.is_empty() {
            // Never attached to a run: an empty, still-valid document.
            self.out = String::from("{\"traceEvents\":[\n");
        }
        self.out.push_str("\n]}\n");
        self.out
    }
}

impl Observer for PerfettoSink {
    fn on_start(&mut self, ctx: &RunContext<'_>) {
        let n_gpus = ctx.gpu_idle.len();
        self.begin(ctx.workers, n_gpus);
    }

    fn on_event(&mut self, event: &ExecEvent) {
        match *event {
            ExecEvent::TaskEnd {
                task,
                worker,
                start,
                end,
                kind,
                precision,
                nb,
                priority,
                ..
            } => {
                let args = format!("\"task\":{task},\"nb\":{nb},\"priority\":{priority}");
                self.complete(
                    kind.name(),
                    precision.short(),
                    worker,
                    start.value(),
                    (end - start).value(),
                    &args,
                );
            }
            ExecEvent::TransferEnd {
                data,
                src,
                dst,
                bytes,
                start,
                end,
            } => {
                let lane = self.engine_lane(src, dst);
                let name = match (src, dst) {
                    (MemNode::Host, MemNode::Gpu(_)) => "h2d",
                    (MemNode::Gpu(_), MemNode::Host) => "d2h",
                    (MemNode::Gpu(_), MemNode::Gpu(_)) => "d2d",
                    (MemNode::Host, MemNode::Host) => "host",
                };
                let args = format!("\"data\":{data},\"bytes\":{}", bytes.value());
                self.complete(
                    name,
                    "dma",
                    lane,
                    start.value(),
                    (end - start).value(),
                    &args,
                );
            }
            ExecEvent::Writeback {
                data,
                device,
                bytes,
                start,
                end,
            } => {
                let lane = self.engine_lane(MemNode::Gpu(device), MemNode::Host);
                let args = format!("\"data\":{data},\"bytes\":{}", bytes.value());
                self.complete(
                    "writeback",
                    "dma",
                    lane,
                    start.value(),
                    (end - start).value(),
                    &args,
                );
            }
            ExecEvent::Eviction { data, device, at } => {
                let lane = self.mem_lane(device);
                self.sep();
                let _ = write!(
                    self.out,
                    "{{\"name\":\"evict\",\"cat\":\"mem\",\"ph\":\"i\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"s\":\"t\",\"args\":{{\"data\":{}}}}}",
                    lane,
                    at.value() * 1e6,
                    data,
                );
            }
            ExecEvent::PowerSample {
                worker,
                start,
                end,
                power,
            } => {
                // A counter track per worker: device power while the task
                // runs, back to zero at its end.
                for (ts, w) in [(start, power.value()), (end, 0.0)] {
                    self.sep();
                    let _ = write!(
                        self.out,
                        "{{\"name\":\"power_w{}\",\"ph\":\"C\",\"pid\":1,\"ts\":{:.3},\"args\":{{\"watts\":{}}}}}",
                        worker,
                        ts.value() * 1e6,
                        w,
                    );
                }
            }
            _ => {}
        }
    }
}

/// Render the per-task records of `trace` as a Chrome trace-event JSON
/// document. Requires the run to have kept records
/// (`SimOptions::keep_records`).
pub fn chrome_trace(
    trace: &RunTrace,
    graph: &TaskGraph,
    workers: &[Worker],
) -> Result<String, TraceError> {
    if trace.records.is_empty() && !graph.is_empty() {
        return Err(TraceError::RecordsNotKept);
    }
    let mut sink = PerfettoSink::new();
    let n_gpus = workers.iter().filter(|w| w.is_gpu()).count();
    sink.begin(workers, n_gpus);
    for r in &trace.records {
        let desc = graph.task(r.task);
        sink.on_event(&ExecEvent::TaskEnd {
            task: r.task,
            worker: r.worker,
            start: r.start,
            end: r.end,
            duration: r.end - r.start,
            kind: desc.kind,
            precision: desc.precision,
            nb: desc.nb,
            priority: desc.priority,
            flops: desc.flops(),
            energy: Joules::ZERO,
        });
    }
    Ok(sink.into_json())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DataRegistry;
    use crate::observer::StatsCollector;
    use crate::sim::{simulate, simulate_observed, SimOptions};
    use crate::task::{AccessMode, KernelKind, TaskDesc};
    use crate::PerfModel;
    use ugpc_hwsim::{Bytes, Node, PlatformId, Precision};

    fn esc(s: &str) -> String {
        let mut out = String::new();
        esc_into(&mut out, s);
        out
    }

    fn run(keep: bool) -> (RunTrace, TaskGraph, Vec<Worker>) {
        let mut node = Node::new(PlatformId::Intel2V100);
        let mut data = DataRegistry::new();
        let mut g = TaskGraph::new();
        let t = data.register(Bytes(8.0 * 960.0 * 960.0));
        for _ in 0..3 {
            g.submit(
                TaskDesc::new(KernelKind::Gemm, Precision::Double, 960)
                    .access(t, AccessMode::ReadWrite),
            );
        }
        let trace = simulate(
            &mut node,
            &g,
            &mut data,
            SimOptions {
                keep_records: keep,
                ..Default::default()
            },
        );
        let (workers, _) = crate::worker::build_workers(node.spec());
        (trace, g, workers)
    }

    #[test]
    fn exports_valid_json_shape() {
        let (trace, g, workers) = run(true);
        let json = chrome_trace(&trace, &g, &workers).expect("records kept");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
        // One X event per task plus thread metadata.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 3);
        assert_eq!(json.matches("\"ph\":\"M\"").count(), workers.len());
        assert!(json.contains("\"name\":\"gemm\""));
        assert!(json.contains("\"cat\":\"dp\""));
        // Balanced braces — a cheap well-formedness smoke check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn requires_records() {
        let (trace, g, workers) = run(false);
        assert_eq!(
            chrome_trace(&trace, &g, &workers),
            Err(TraceError::RecordsNotKept)
        );
        assert!(TraceError::RecordsNotKept.to_string().contains("records"));
    }

    #[test]
    fn empty_graph_exports_empty_trace() {
        let g = TaskGraph::new();
        let mut node = Node::new(PlatformId::Intel2V100);
        let mut data = DataRegistry::new();
        let trace = simulate(&mut node, &g, &mut data, SimOptions::default());
        let (workers, _) = crate::worker::build_workers(node.spec());
        let json = chrome_trace(&trace, &g, &workers).expect("empty graph is fine");
        assert!(json.contains("traceEvents"));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 0);
    }

    #[test]
    fn streaming_sink_gains_transfer_and_eviction_lanes() {
        let mut node = Node::new(PlatformId::Amd4A100);
        let mut data = DataRegistry::new();
        let mut g = TaskGraph::new();
        for _ in 0..4 {
            let t = data.register(Bytes(8.0 * 2880.0 * 2880.0));
            for _ in 0..2 {
                g.submit(
                    TaskDesc::new(KernelKind::Gemm, Precision::Double, 2880)
                        .access(t, AccessMode::ReadWrite),
                );
            }
        }
        let mut sink = PerfettoSink::new();
        let mut stats = StatsCollector::new();
        let mut perf = PerfModel::new();
        {
            let mut obs: [&mut dyn Observer; 2] = [&mut sink, &mut stats];
            simulate_observed(
                &mut node,
                &g,
                &mut data,
                SimOptions::default(),
                &mut perf,
                &mut obs,
            );
        }
        let json = sink.into_json();
        let stats = stats.into_stats();
        assert!(stats.transfers > 0, "workload fetches tiles");
        // Task + transfer complete events all present.
        assert_eq!(
            json.matches("\"ph\":\"X\"").count(),
            stats.tasks + stats.transfers + stats.writebacks
        );
        // DMA lanes got named.
        assert!(json.contains("\"name\":\"h2d0\""));
        assert!(json.contains("\"cat\":\"dma\""));
        // Power counter tracks: two samples (start, end) per task.
        assert_eq!(json.matches("\"ph\":\"C\"").count(), stats.tasks * 2);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn trace_ids_are_stamped_as_metadata() {
        let (trace, g, workers) = run(true);
        let mut sink = PerfettoSink::new();
        sink.set_trace_ids("00deadbeef01", "00cafef00d02");
        let n_gpus = workers.iter().filter(|w| w.is_gpu()).count();
        sink.begin(&workers, n_gpus);
        for r in &trace.records {
            let desc = g.task(r.task);
            sink.on_event(&ExecEvent::TaskEnd {
                task: r.task,
                worker: r.worker,
                start: r.start,
                end: r.end,
                duration: r.end - r.start,
                kind: desc.kind,
                precision: desc.precision,
                nb: desc.nb,
                priority: desc.priority,
                flops: desc.flops(),
                energy: Joules::ZERO,
            });
        }
        let json = sink.into_json();
        assert!(json.contains("\"name\":\"trace_context\""));
        assert!(json.contains("\"trace_id\":\"00deadbeef01\""));
        assert!(json.contains("\"span_id\":\"00cafef00d02\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        // Unstamped sinks carry no trace_context record.
        let unstamped = chrome_trace(&trace, &g, &workers).expect("records kept");
        assert!(!unstamped.contains("trace_context"));
    }

    #[test]
    fn escaping() {
        assert_eq!(esc("plain"), "plain");
        assert_eq!(esc("a\"b"), "a\\\"b");
        assert_eq!(esc("a\\b"), "a\\\\b");
        assert_eq!(esc("a\nb"), "a\\u000ab");
    }
}
