//! The executor event stream: every state change an executor makes is
//! emitted as a typed [`ExecEvent`] through the [`Observer`] trait, and
//! every run-level surface — the [`RunTrace`](crate::trace::RunTrace)
//! aggregates, Perfetto exports, power timelines, progress meters — is an
//! observer over that stream instead of counters threaded through the hot
//! loop.
//!
//! Both executors emit the same stream: [`crate::sim`] with virtual
//! timestamps, [`crate::native`] with wall-clock timestamps relative to
//! the run start — so the same sinks (and differential tests) attach to
//! either.
//!
//! ## Observer neutrality
//!
//! Observers are *read-only witnesses*: they receive each event by
//! reference after the executor has already committed the corresponding
//! state change, and nothing they do can feed back into virtual time,
//! scheduling decisions, or device state. The observer-determinism
//! differential test (`tests/observer_differential.rs`) pins this down:
//! a run with zero observers, with only the `TraceBuilder`, and with
//! every sink attached must produce bit-identical results.

use crate::data::{DataId, MemNode};
use crate::graph::TaskGraph;
use crate::sim::SimOptions;
use crate::task::{KernelKind, TaskId};
use crate::worker::Worker;
use crate::worker::WorkerId;
use serde::{Deserialize, Serialize};
use ugpc_hwsim::{Bytes, EnergyReading, Flops, Joules, Precision, Secs, Watts};

/// One executor event. Timestamps are virtual seconds in the simulator
/// and wall-clock seconds since run start in the native executor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecEvent {
    /// The scheduler committed `task` to `worker`'s queue at time `at`.
    TaskAssigned {
        task: TaskId,
        worker: WorkerId,
        at: Secs,
    },
    /// `task` began executing on `worker`.
    TaskStart {
        task: TaskId,
        worker: WorkerId,
        at: Secs,
    },
    /// `task` finished on `worker`, with everything a sink needs to
    /// describe it without holding a graph reference.
    TaskEnd {
        task: TaskId,
        worker: WorkerId,
        start: Secs,
        end: Secs,
        /// Raw device duration. `end - start` re-rounds in f64, so any
        /// busy-time accounting that must match the executor bit-for-bit
        /// has to accumulate this, not the difference.
        duration: Secs,
        kind: KernelKind,
        precision: Precision,
        nb: usize,
        priority: i32,
        flops: Flops,
        energy: Joules,
    },
    /// A DMA engine began copying an operand replica.
    TransferStart {
        data: DataId,
        src: MemNode,
        dst: MemNode,
        bytes: Bytes,
        at: Secs,
    },
    /// The copy completed (committed at planning time: both endpoints are
    /// known the moment the engine is reserved).
    TransferEnd {
        data: DataId,
        src: MemNode,
        dst: MemNode,
        bytes: Bytes,
        start: Secs,
        end: Secs,
    },
    /// LRU eviction dropped `data`'s replica from `device`'s memory.
    Eviction {
        data: DataId,
        device: usize,
        at: Secs,
    },
    /// The evicted replica was the sole valid copy: a device-to-host
    /// writeback occupies the d2h engine over `[start, end]`.
    Writeback {
        data: DataId,
        device: usize,
        bytes: Bytes,
        start: Secs,
        end: Secs,
    },
    /// The observed execution fed the history performance model.
    ModelRefine {
        task: TaskId,
        worker: WorkerId,
        observed: Secs,
        energy: Joules,
        at: Secs,
    },
    /// Average power drawn by `worker`'s device while the task ran (GPU:
    /// whole-device power; CPU: that core's share of package power).
    PowerSample {
        worker: WorkerId,
        start: Secs,
        end: Secs,
        power: Watts,
    },
}

/// What an observer learns before the first event: the worker topology,
/// the graph being run, the executor options, and the per-GPU idle power
/// (the baseline under any power timeline). Borrowed only for the
/// duration of [`Observer::on_start`] — copy out what you need.
pub struct RunContext<'a> {
    pub workers: &'a [Worker],
    pub graph: &'a TaskGraph,
    pub options: SimOptions,
    /// Idle power per GPU device; empty under the native executor.
    pub gpu_idle: &'a [Watts],
}

/// The run-level outcome handed to [`Observer::on_finish`]: the makespan
/// is still computed by the executor (it owns the worker-drain state the
/// energy probe needs), observers copy it rather than re-deriving it.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    pub makespan: Secs,
    pub energy: EnergyReading,
}

/// A sink over the executor event stream. All methods default to no-ops
/// so sinks implement only what they consume. `Send` because the native
/// executor dispatches events from worker threads (behind a mutex).
pub trait Observer: Send {
    fn on_start(&mut self, _ctx: &RunContext<'_>) {}
    fn on_event(&mut self, _event: &ExecEvent) {}
    fn on_finish(&mut self, _summary: &RunSummary) {}
}

/// Dispatch one event to every attached observer.
pub(crate) fn emit(observers: &mut [&mut dyn Observer], event: &ExecEvent) {
    for o in observers.iter_mut() {
        o.on_event(event);
    }
}

/// An observer that records the raw stream — the differential tests
/// compare these across executors and observer configurations.
#[derive(Debug, Default)]
pub struct EventLog {
    pub events: Vec<ExecEvent>,
    pub summary: Option<RunSummary>,
}

impl EventLog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Task ids in completion order.
    pub fn completions(&self) -> Vec<TaskId> {
        self.events
            .iter()
            .filter_map(|e| match e {
                ExecEvent::TaskEnd { task, .. } => Some(*task),
                _ => None,
            })
            .collect()
    }

    /// Event-order fold of every `TaskEnd` raw `duration`. Any observer
    /// accumulating busy time with `+=` over the same stream produces
    /// this value bit-for-bit (f64 addition in identical order).
    pub fn busy_time(&self) -> Secs {
        let mut total = Secs::ZERO;
        for e in &self.events {
            if let ExecEvent::TaskEnd { duration, .. } = e {
                total += *duration;
            }
        }
        total
    }

    /// Event-order fold of every `TaskEnd` task energy (the busy joules,
    /// excluding idle floor power). Bit-for-bit reference for energy
    /// attribution, like [`EventLog::busy_time`].
    pub fn busy_energy(&self) -> Joules {
        let mut total = Joules::ZERO;
        for e in &self.events {
            if let ExecEvent::TaskEnd { energy, .. } = e {
                total += *energy;
            }
        }
        total
    }
}

impl Observer for EventLog {
    fn on_event(&mut self, event: &ExecEvent) {
        self.events.push(*event);
    }

    fn on_finish(&mut self, summary: &RunSummary) {
        self.summary = Some(summary.clone());
    }
}

/// Serializable run-level counters derived from the stream: the transfer
/// and memory-pressure breakdown the aggregate `RunTrace` never carried.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Tasks completed.
    pub tasks: usize,
    pub cpu_tasks: usize,
    pub gpu_tasks: usize,
    /// Operand transfers (each hop of a staged copy counts once).
    pub transfers: usize,
    /// Bytes moved by operand transfers.
    pub transferred: Bytes,
    /// Replicas dropped from GPU memory to make room.
    pub evictions: usize,
    /// Evictions of sole owners that required a d2h writeback.
    pub writebacks: usize,
    /// Bytes written back to host by evictions.
    pub written_back: Bytes,
    /// Observations fed to the history performance model.
    pub refinements: usize,
}

/// The observer that accumulates [`ExecStats`] (kept separate so the
/// stats struct serializes without observer bookkeeping).
#[derive(Debug, Default)]
pub struct StatsCollector {
    stats: ExecStats,
    gpu_worker: Vec<bool>,
}

impl StatsCollector {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    pub fn into_stats(self) -> ExecStats {
        self.stats
    }
}

impl Observer for StatsCollector {
    fn on_start(&mut self, ctx: &RunContext<'_>) {
        self.gpu_worker = ctx.workers.iter().map(Worker::is_gpu).collect();
    }

    fn on_event(&mut self, event: &ExecEvent) {
        let s = &mut self.stats;
        match *event {
            ExecEvent::TaskEnd { worker, .. } => {
                s.tasks += 1;
                if self.gpu_worker.get(worker).copied().unwrap_or(false) {
                    s.gpu_tasks += 1;
                } else {
                    s.cpu_tasks += 1;
                }
            }
            ExecEvent::TransferEnd { bytes, .. } => {
                s.transfers += 1;
                s.transferred += bytes;
            }
            ExecEvent::Eviction { .. } => s.evictions += 1,
            ExecEvent::Writeback { bytes, .. } => {
                s.writebacks += 1;
                s.written_back += bytes;
            }
            ExecEvent::ModelRefine { .. } => s.refinements += 1,
            _ => {}
        }
    }
}

/// A progress meter for long interactive runs: prints one stderr line
/// every `every` completed tasks. Purely cosmetic — attach it to the CLI,
/// never to anything whose output is compared.
#[derive(Debug)]
pub struct Progress {
    every: usize,
    done: usize,
    total: usize,
}

impl Progress {
    pub fn every(every: usize) -> Self {
        Progress {
            every: every.max(1),
            done: 0,
            total: 0,
        }
    }
}

impl Observer for Progress {
    fn on_start(&mut self, ctx: &RunContext<'_>) {
        self.total = ctx.graph.len();
    }

    fn on_event(&mut self, event: &ExecEvent) {
        if let ExecEvent::TaskEnd { .. } = event {
            self.done += 1;
            if self.done.is_multiple_of(self.every) || self.done == self.total {
                eprintln!("[progress] {}/{} tasks", self.done, self.total);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DataRegistry;
    use crate::sim::{simulate_observed, SimOptions};
    use crate::task::{AccessMode, TaskDesc};
    use crate::PerfModel;
    use ugpc_hwsim::{Node, PlatformId};

    fn run_with(observers: &mut [&mut dyn Observer]) -> RunSummary {
        let mut node = Node::new(PlatformId::Intel2V100);
        let mut data = DataRegistry::new();
        let mut g = TaskGraph::new();
        let t = data.register(Bytes(8.0 * 960.0 * 960.0));
        for _ in 0..4 {
            g.submit(
                TaskDesc::new(KernelKind::Gemm, Precision::Double, 960)
                    .access(t, AccessMode::ReadWrite),
            );
        }
        let mut perf = PerfModel::new();
        simulate_observed(
            &mut node,
            &g,
            &mut data,
            SimOptions::default(),
            &mut perf,
            observers,
        )
    }

    #[test]
    fn event_log_sees_lifecycle_in_order() {
        let mut log = EventLog::new();
        {
            let mut obs: [&mut dyn Observer; 1] = [&mut log];
            run_with(&mut obs);
        }
        assert_eq!(log.completions().len(), 4);
        // Per task: assigned, then started, then ended — in stream order.
        for task in 0..4 {
            let idx = |pred: &dyn Fn(&ExecEvent) -> bool| {
                log.events.iter().position(pred).expect("event")
            };
            let a = idx(&|e| matches!(e, ExecEvent::TaskAssigned { task: t, .. } if *t == task));
            let s = idx(&|e| matches!(e, ExecEvent::TaskStart { task: t, .. } if *t == task));
            let e = idx(&|e| matches!(e, ExecEvent::TaskEnd { task: t, .. } if *t == task));
            assert!(a < s && s < e, "task {task}: {a} {s} {e}");
        }
        assert!(log.summary.is_some());
    }

    #[test]
    fn stats_collector_counts_stream() {
        let mut stats = StatsCollector::new();
        {
            let mut obs: [&mut dyn Observer; 1] = [&mut stats];
            run_with(&mut obs);
        }
        let s = stats.into_stats();
        assert_eq!(s.tasks, 4);
        assert_eq!(s.cpu_tasks + s.gpu_tasks, 4);
        // The chain shares one tile: at most one fetch is needed.
        assert!(s.transfers >= 1);
        assert!(s.transferred > Bytes::ZERO);
        assert_eq!(s.refinements, 4);
    }

    #[test]
    fn exec_stats_round_trips_through_json() {
        let mut stats = StatsCollector::new();
        {
            let mut obs: [&mut dyn Observer; 1] = [&mut stats];
            run_with(&mut obs);
        }
        let s = stats.into_stats();
        let json = serde_json::to_string(&s).expect("serialize");
        let back: ExecStats = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, s);
    }

    #[test]
    fn observers_share_one_stream() {
        let mut log = EventLog::new();
        let mut stats = StatsCollector::new();
        {
            let mut obs: [&mut dyn Observer; 2] = [&mut log, &mut stats];
            run_with(&mut obs);
        }
        assert_eq!(stats.stats().tasks, log.completions().len());
    }
}
