//! GPU memory management for the virtual-time executor.
//!
//! Real runs at the paper's sizes (a 172 800² f64 POTRF is ~239 GB) far
//! exceed a 40 GB HBM, so StarPU continuously evicts and re-fetches tile
//! replicas. This module models that: every GPU has a capacity-limited
//! resident set; making room evicts least-recently-used, unpinned replicas,
//! with a device-to-host writeback when the GPU holds the sole valid copy.
//! Operands of queued-but-not-yet-executed tasks are pinned and never
//! evicted.

use crate::data::{DataId, DataRegistry, MemNode};
use std::collections::HashMap;
use ugpc_hwsim::Bytes;

#[derive(Debug, Clone, Copy)]
struct Entry {
    bytes: Bytes,
    last_use: u64,
    pins: u32,
}

/// The resident set of one GPU's device memory.
#[derive(Debug, Clone)]
pub struct GpuMemory {
    device: usize,
    capacity: Bytes,
    used: Bytes,
    resident: HashMap<DataId, Entry>,
    clock: u64,
    /// Replicas dropped to make room.
    pub evictions: usize,
    /// Evictions that required writing the sole copy back to host.
    pub writebacks: usize,
    /// Set when a task's own operands exceed capacity even after evicting
    /// everything else — the model then over-subscribes rather than
    /// deadlocking (and reports it).
    pub over_subscribed: bool,
}

impl GpuMemory {
    pub fn new(device: usize, capacity: Bytes) -> Self {
        assert!(capacity > Bytes::ZERO);
        GpuMemory {
            device,
            capacity,
            used: Bytes::ZERO,
            resident: HashMap::new(),
            clock: 0,
            evictions: 0,
            writebacks: 0,
            over_subscribed: false,
        }
    }

    pub fn device(&self) -> usize {
        self.device
    }

    pub fn used(&self) -> Bytes {
        self.used
    }

    pub fn capacity(&self) -> Bytes {
        self.capacity
    }

    pub fn is_resident(&self, id: DataId) -> bool {
        self.resident.contains_key(&id)
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Mark a replica resident (after a transfer or an allocation for a
    /// write) and update its recency. Idempotent on already-resident ids.
    pub fn note_resident(&mut self, id: DataId, bytes: Bytes) {
        let t = self.tick();
        match self.resident.entry(id) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                e.get_mut().last_use = t;
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(Entry {
                    bytes,
                    last_use: t,
                    pins: 0,
                });
                self.used += bytes;
            }
        }
        self.assert_accounting();
    }

    /// Pin a resident replica (operand of a queued task).
    pub fn pin(&mut self, id: DataId) {
        self.resident
            .get_mut(&id)
            .expect("pinning a non-resident replica")
            .pins += 1;
    }

    /// Release one pin.
    pub fn unpin(&mut self, id: DataId) {
        if let Some(e) = self.resident.get_mut(&id) {
            debug_assert!(e.pins > 0, "unpin without pin");
            e.pins = e.pins.saturating_sub(1);
        }
    }

    /// Drop a replica if present (invalidated by a remote write). Must not
    /// be pinned — dependency order guarantees readers completed.
    pub fn drop_if_present(&mut self, id: DataId) {
        if let Some(e) = self.resident.remove(&id) {
            debug_assert_eq!(e.pins, 0, "dropping a pinned replica");
            self.used -= e.bytes;
        }
        self.assert_accounting();
    }

    /// Evict least-recently-used unpinned replicas until `incoming` new
    /// bytes fit. Returns the evicted ids with a flag for those needing a
    /// writeback (sole valid copy). The caller performs the registry
    /// invalidation and schedules the writeback transfers.
    pub fn make_room(&mut self, incoming: Bytes, reg: &DataRegistry) -> Vec<(DataId, bool)> {
        let mut out = Vec::new();
        while self.used + incoming > self.capacity {
            // `last_use` ticks are unique today (one per touch), but the
            // id tie-break keeps victim selection independent of the
            // map's iteration order even if that ever changes — eviction
            // order feeds the simulated transfer schedule, which must be
            // bit-stable across runs.
            let victim = self
                .resident
                .iter()
                .filter(|(_, e)| e.pins == 0)
                .min_by_key(|&(&id, e)| (e.last_use, id))
                .map(|(&id, _)| id);
            let Some(id) = victim else {
                self.over_subscribed = true;
                break;
            };
            let e = self.resident.remove(&id).expect("victim is resident");
            self.used -= e.bytes;
            let writeback = reg.is_sole_owner(id, MemNode::Gpu(self.device));
            self.evictions += 1;
            if writeback {
                self.writebacks += 1;
            }
            out.push((id, writeback));
        }
        self.assert_accounting();
        out
    }

    /// Sanitizer: `used` must equal the sum of resident entries and never
    /// exceed capacity unless the over-subscription escape hatch fired.
    /// Compiles to nothing without the `sanitize` feature.
    #[cfg(feature = "sanitize")]
    fn assert_accounting(&self) {
        // Order-dependent float sum, but it only feeds a tolerance
        // check — never the simulation or any serialized output.
        let sum: Bytes = self.resident.values().map(|e| e.bytes).sum(); // lint:allow hash-iteration
        let drift = (sum - self.used).abs();
        assert!(
            drift <= Bytes(1e-6) + sum * 1e-12,
            "sanitize: gpu {} accounting drift: used {:?} vs resident sum {:?}",
            self.device,
            self.used,
            sum
        );
        assert!(
            self.used <= self.capacity || self.over_subscribed,
            "sanitize: gpu {} resident set {:?} exceeds capacity {:?} without \
             over-subscription being reported",
            self.device,
            self.used,
            self.capacity
        );
    }

    #[cfg(not(feature = "sanitize"))]
    #[inline(always)]
    fn assert_accounting(&self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg_with(n: usize) -> DataRegistry {
        let mut reg = DataRegistry::new();
        for _ in 0..n {
            reg.register(Bytes(100.0));
        }
        reg
    }

    #[test]
    fn resident_accounting() {
        let mut m = GpuMemory::new(0, Bytes(250.0));
        m.note_resident(0, Bytes(100.0));
        m.note_resident(1, Bytes(100.0));
        assert_eq!(m.used(), Bytes(200.0));
        assert!(m.is_resident(0));
        // Re-noting does not double count.
        m.note_resident(0, Bytes(100.0));
        assert_eq!(m.used(), Bytes(200.0));
    }

    #[test]
    fn lru_eviction_order() {
        let reg = reg_with(3);
        let mut m = GpuMemory::new(0, Bytes(250.0));
        m.note_resident(0, Bytes(100.0));
        m.note_resident(1, Bytes(100.0));
        // Touch 0 so 1 becomes LRU.
        m.note_resident(0, Bytes(100.0));
        let evicted = m.make_room(Bytes(100.0), &reg);
        assert_eq!(evicted, vec![(1, false)]); // host still valid: no writeback
        assert!(!m.is_resident(1));
        assert_eq!(m.used(), Bytes(100.0));
        assert_eq!(m.evictions, 1);
        assert_eq!(m.writebacks, 0);
    }

    #[test]
    fn sole_owner_needs_writeback() {
        let mut reg = reg_with(1);
        reg.write_at(0, MemNode::Gpu(0)); // GPU 0 sole owner
        let mut m = GpuMemory::new(0, Bytes(100.0));
        m.note_resident(0, Bytes(100.0));
        let evicted = m.make_room(Bytes(100.0), &reg);
        assert_eq!(evicted, vec![(0, true)]);
        assert_eq!(m.writebacks, 1);
    }

    #[test]
    fn pinned_replicas_survive() {
        let reg = reg_with(2);
        let mut m = GpuMemory::new(0, Bytes(200.0));
        m.note_resident(0, Bytes(100.0));
        m.note_resident(1, Bytes(100.0));
        m.pin(0);
        let evicted = m.make_room(Bytes(100.0), &reg);
        // Only the unpinned one goes.
        assert_eq!(evicted, vec![(1, false)]);
        // Pinning everything and asking for more over-subscribes.
        m.pin(0); // second pin
        let evicted = m.make_room(Bytes(150.0), &reg);
        assert!(evicted.is_empty());
        assert!(m.over_subscribed);
        // Unpinning twice releases the entry for future eviction.
        m.unpin(0);
        m.unpin(0);
        m.over_subscribed = false;
        let evicted = m.make_room(Bytes(150.0), &reg);
        assert_eq!(evicted.len(), 1);
    }

    #[test]
    fn remote_write_drops_replica() {
        let mut m = GpuMemory::new(0, Bytes(200.0));
        m.note_resident(0, Bytes(100.0));
        m.drop_if_present(0);
        assert!(!m.is_resident(0));
        assert_eq!(m.used(), Bytes(0.0));
        // Dropping an absent id is a no-op.
        m.drop_if_present(42);
    }
}
