//! Per-device power timelines over virtual time, built from the
//! executor's `PowerSample` events — the paper's Fig. 5 energy breakdown,
//! resolved in time instead of integrated over the run.
//!
//! [`PowerTimeline`] is an [`Observer`]: attach it to a run, then turn it
//! into a serializable [`PowerProfile`] — one lane per device (every GPU,
//! every CPU package), each lane a vector of per-bin average watts.
//!
//! GPU samples carry whole-device power, so idle power fills the gaps
//! between kernels. CPU samples carry per-core power only; package uncore
//! power is not attributed to lanes, so CPU lanes show busy-core draw and
//! understate the package total (the run's `EnergyReading` remains the
//! authoritative integral).

use crate::observer::{ExecEvent, Observer, RunContext, RunSummary};
use crate::worker::WorkerKind;
use serde::{Deserialize, Serialize};
use ugpc_hwsim::{Secs, Watts};

/// A binned per-device power profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerProfile {
    /// Width of one bin in seconds.
    pub bin_s: f64,
    /// Run length the bins cover.
    pub makespan_s: f64,
    /// Lane names: `gpu0..gpuN`, then `cpu0..cpuM` (one per package).
    pub lanes: Vec<String>,
    /// Average watts per lane per bin (`avg_w[lane][bin]`).
    pub avg_w: Vec<Vec<f64>>,
    /// Peak bin average per lane.
    pub peak_w: Vec<f64>,
}

impl PowerProfile {
    /// Lane index by name (`"gpu0"`, `"cpu1"`, …).
    pub fn lane(&self, name: &str) -> Option<usize> {
        self.lanes.iter().position(|l| l == name)
    }

    /// Mean of a lane's bin averages over the whole run.
    pub fn mean_w(&self, lane: usize) -> f64 {
        let bins = &self.avg_w[lane];
        if bins.is_empty() {
            0.0
        } else {
            bins.iter().sum::<f64>() / bins.len() as f64
        }
    }
}

/// Observer that samples per-device watts over time.
#[derive(Debug)]
pub struct PowerTimeline {
    bins: usize,
    /// Lane index per worker id (GPU workers → device lane, CPU workers →
    /// package lane).
    worker_lane: Vec<usize>,
    lanes: Vec<String>,
    /// Idle baseline per lane (GPU lanes only; zero for CPU packages).
    idle: Vec<Watts>,
    /// Raw samples: (lane, start, end, power).
    samples: Vec<(usize, Secs, Secs, Watts)>,
    makespan: Secs,
}

impl PowerTimeline {
    /// `bins`: time resolution of the profile (clamped to at least 1).
    pub fn new(bins: usize) -> Self {
        PowerTimeline {
            bins: bins.max(1),
            worker_lane: Vec::new(),
            lanes: Vec::new(),
            idle: Vec::new(),
            samples: Vec::new(),
            makespan: Secs::ZERO,
        }
    }

    /// Fold the samples into the binned profile.
    pub fn into_profile(self) -> PowerProfile {
        let bins = self.bins;
        let makespan = self.makespan.value();
        let width = if makespan > 0.0 {
            makespan / bins as f64
        } else {
            0.0
        };
        // Busy energy and busy time per (lane, bin); idle fills the rest
        // of GPU lanes afterwards.
        let mut energy = vec![vec![0.0f64; bins]; self.lanes.len()];
        let mut busy = vec![vec![0.0f64; bins]; self.lanes.len()];
        if width > 0.0 {
            for (lane, start, end, power) in &self.samples {
                let (s, e) = (start.value(), end.value());
                let first = ((s / width) as usize).min(bins - 1);
                let last = ((e / width) as usize).min(bins - 1);
                for b in first..=last {
                    let lo = s.max(b as f64 * width);
                    let hi = e.min((b + 1) as f64 * width);
                    let overlap = (hi - lo).max(0.0);
                    energy[*lane][b] += power.value() * overlap;
                    busy[*lane][b] += overlap;
                }
            }
        }
        let avg_w: Vec<Vec<f64>> = energy
            .iter()
            .zip(&busy)
            .zip(&self.idle)
            .map(|((e, b), idle)| {
                (0..bins)
                    .map(|i| {
                        if width == 0.0 {
                            0.0
                        } else {
                            // Device power while busy, idle power otherwise.
                            let idle_time = (width - b[i]).max(0.0);
                            (e[i] + idle.value() * idle_time) / width
                        }
                    })
                    .collect()
            })
            .collect();
        let peak_w = avg_w
            .iter()
            .map(|l| l.iter().copied().fold(0.0f64, f64::max))
            .collect();
        PowerProfile {
            bin_s: width,
            makespan_s: makespan,
            lanes: self.lanes,
            avg_w,
            peak_w,
        }
    }
}

impl Observer for PowerTimeline {
    fn on_start(&mut self, ctx: &RunContext<'_>) {
        let n_gpus = ctx.gpu_idle.len();
        let n_packages = ctx
            .workers
            .iter()
            .filter_map(|w| match w.kind {
                WorkerKind::CpuCore { package, .. } => Some(package + 1),
                WorkerKind::Gpu { .. } => None,
            })
            .max()
            .unwrap_or(0);
        self.lanes = (0..n_gpus)
            .map(|g| format!("gpu{g}"))
            .chain((0..n_packages).map(|p| format!("cpu{p}")))
            .collect();
        self.idle = ctx
            .gpu_idle
            .iter()
            .copied()
            .chain(std::iter::repeat_n(Watts(0.0), n_packages))
            .collect();
        self.worker_lane = ctx
            .workers
            .iter()
            .map(|w| match w.kind {
                WorkerKind::Gpu { device } => device,
                WorkerKind::CpuCore { package, .. } => n_gpus + package,
            })
            .collect();
    }

    fn on_event(&mut self, event: &ExecEvent) {
        if let ExecEvent::PowerSample {
            worker,
            start,
            end,
            power,
        } = *event
        {
            if let Some(&lane) = self.worker_lane.get(worker) {
                self.samples.push((lane, start, end, power));
            }
        }
    }

    fn on_finish(&mut self, summary: &RunSummary) {
        self.makespan = summary.makespan;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::DataRegistry;
    use crate::graph::TaskGraph;
    use crate::sim::{simulate_observed, SimOptions};
    use crate::task::{AccessMode, KernelKind, TaskDesc};
    use crate::PerfModel;
    use ugpc_hwsim::{Bytes, Node, PlatformId, Precision};

    fn profile_of(platform: PlatformId, chains: usize, bins: usize) -> PowerProfile {
        let mut node = Node::new(platform);
        let mut data = DataRegistry::new();
        let mut g = TaskGraph::new();
        for _ in 0..chains {
            let t = data.register(Bytes(8.0 * 1440.0 * 1440.0));
            for _ in 0..3 {
                g.submit(
                    TaskDesc::new(KernelKind::Gemm, Precision::Double, 1440)
                        .access(t, AccessMode::ReadWrite),
                );
            }
        }
        let mut timeline = PowerTimeline::new(bins);
        let mut perf = PerfModel::new();
        {
            let mut obs: [&mut dyn Observer; 1] = [&mut timeline];
            simulate_observed(
                &mut node,
                &g,
                &mut data,
                SimOptions::default(),
                &mut perf,
                &mut obs,
            );
        }
        timeline.into_profile()
    }

    #[test]
    fn lanes_cover_all_devices() {
        let p = profile_of(PlatformId::Intel2V100, 4, 16);
        assert_eq!(
            p.lanes,
            vec!["gpu0", "gpu1", "cpu0", "cpu1"],
            "2 GPUs + 2 packages"
        );
        assert_eq!(p.avg_w.len(), 4);
        assert!(p.avg_w.iter().all(|l| l.len() == 16));
        assert!(p.bin_s > 0.0);
        assert!((p.bin_s * 16.0 - p.makespan_s).abs() < 1e-9);
    }

    #[test]
    fn gpu_lanes_never_drop_below_idle() {
        let p = profile_of(PlatformId::Intel2V100, 4, 24);
        let idle = 40.0; // V100 idle power floor on this platform.
        for g in 0..2 {
            let lane = p.lane(&format!("gpu{g}")).expect("gpu lane");
            for (b, w) in p.avg_w[lane].iter().enumerate() {
                assert!(
                    *w >= idle * 0.99,
                    "gpu{g} bin {b}: {w} W below idle {idle} W"
                );
            }
        }
    }

    #[test]
    fn busy_bins_exceed_idle_bins() {
        let p = profile_of(PlatformId::Amd4A100, 8, 32);
        let lane = p.lane("gpu0").expect("gpu0");
        assert!(
            p.peak_w[lane] > p.avg_w[lane].iter().copied().fold(f64::MAX, f64::min),
            "a busy run has power variation over time"
        );
        assert!(p.peak_w[lane] <= 450.0, "peak within device limits");
    }

    #[test]
    fn empty_run_gives_flat_zero_profile() {
        let p = profile_of(PlatformId::Intel2V100, 0, 8);
        assert_eq!(p.makespan_s, 0.0);
        assert!(p.avg_w.iter().flatten().all(|w| *w == 0.0));
    }

    #[test]
    fn profile_round_trips_through_json() {
        let p = profile_of(PlatformId::Intel2V100, 2, 8);
        let json = serde_json::to_string(&p).expect("serialize");
        let back: PowerProfile = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, p);
    }
}
