//! Native threaded execution of a task graph.
//!
//! The virtual-time executor ([`crate::sim`]) answers "what would this run
//! cost on that platform"; this executor actually runs the DAG on host
//! threads with real kernels, which is how the numerical correctness of
//! the tiled operations is validated (see `ugpc-linalg`).
//!
//! Work-stealing runtime in the Rayon/Tokio mold: a global injector feeds
//! per-thread deques; idle threads steal; dependency counters are atomics
//! decremented by whichever thread completes the last predecessor
//! (release/acquire pairs via the deque operations order the kernel
//! effects).

use crate::graph::TaskGraph;
use crate::task::{TaskDesc, TaskId};
use crossbeam::deque::{Injector, Stealer, Worker as Deque};
use crossbeam::utils::Backoff;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Statistics of one native run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NativeStats {
    /// Tasks executed (always the graph size on success).
    pub executed: usize,
    /// Tasks executed by each thread.
    pub per_thread: Vec<usize>,
}

/// A threaded DAG executor.
#[derive(Debug, Clone, Copy)]
pub struct NativeExecutor {
    threads: usize,
}

impl Default for NativeExecutor {
    fn default() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }
}

impl NativeExecutor {
    pub fn new(threads: usize) -> Self {
        NativeExecutor {
            threads: threads.max(1),
        }
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute every task of `graph` exactly once, respecting all
    /// dependency edges. `kernel` is called concurrently from worker
    /// threads; disjoint-data safety is the caller's contract (the linalg
    /// layer hands out interior-mutable tiles keyed by the task id).
    pub fn execute<F>(&self, graph: &TaskGraph, kernel: F) -> NativeStats
    where
        F: Fn(TaskId, &TaskDesc) + Sync,
    {
        let n = graph.len();
        if n == 0 {
            return NativeStats {
                executed: 0,
                per_thread: vec![0; self.threads],
            };
        }

        let indeg: Vec<AtomicUsize> = graph
            .indegrees()
            .into_iter()
            .map(AtomicUsize::new)
            .collect();
        let completed = AtomicUsize::new(0);
        let injector = Injector::new();
        for t in graph.roots() {
            injector.push(t);
        }

        let deques: Vec<Deque<TaskId>> = (0..self.threads).map(|_| Deque::new_fifo()).collect();
        let stealers: Vec<Stealer<TaskId>> = deques.iter().map(Deque::stealer).collect();
        let counts: Vec<AtomicUsize> = (0..self.threads).map(|_| AtomicUsize::new(0)).collect();

        std::thread::scope(|scope| {
            for (me, local) in deques.into_iter().enumerate() {
                let injector = &injector;
                let stealers = &stealers;
                let indeg = &indeg;
                let completed = &completed;
                let counts = &counts;
                let kernel = &kernel;
                scope.spawn(move || {
                    let backoff = Backoff::new();
                    loop {
                        if completed.load(Ordering::Acquire) == n {
                            break;
                        }
                        let task = local.pop().or_else(|| {
                            // Drain the injector, then try stealing.
                            std::iter::repeat_with(|| {
                                injector.steal_batch_and_pop(&local).or_else(|| {
                                    stealers
                                        .iter()
                                        .map(|s| s.steal())
                                        .collect::<crossbeam::deque::Steal<_>>()
                                })
                            })
                            .find(|s| !s.is_retry())
                            .and_then(|s| s.success())
                        });
                        let Some(task) = task else {
                            backoff.snooze();
                            continue;
                        };
                        backoff.reset();

                        kernel(task, graph.task(task));
                        counts[me].fetch_add(1, Ordering::Relaxed);

                        for &s in graph.successors(task) {
                            // The last predecessor to finish releases the
                            // successor.
                            if indeg[s].fetch_sub(1, Ordering::AcqRel) == 1 {
                                local.push(s);
                            }
                        }
                        completed.fetch_add(1, Ordering::Release);
                    }
                });
            }
        });

        NativeStats {
            executed: completed.load(Ordering::Acquire),
            per_thread: counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{AccessMode, KernelKind};
    use std::sync::atomic::AtomicBool;
    use ugpc_hwsim::Precision;

    fn diamond() -> TaskGraph {
        // 0 -> {1, 2} -> 3 via data deps on tiles.
        let mut g = TaskGraph::new();
        let t = |accesses: &[(usize, AccessMode)]| {
            let mut d = TaskDesc::new(KernelKind::Gemm, Precision::Double, 4);
            for &(id, m) in accesses {
                d = d.access(id, m);
            }
            d
        };
        g.submit(t(&[(0, AccessMode::Write)]));
        g.submit(t(&[(0, AccessMode::Read), (1, AccessMode::Write)]));
        g.submit(t(&[(0, AccessMode::Read), (2, AccessMode::Write)]));
        g.submit(t(&[(1, AccessMode::Read), (2, AccessMode::Read)]));
        g
    }

    #[test]
    fn executes_every_task_once() {
        let g = diamond();
        let hits: Vec<AtomicUsize> = (0..g.len()).map(|_| AtomicUsize::new(0)).collect();
        let stats = NativeExecutor::new(4).execute(&g, |t, _| {
            hits[t].fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(stats.executed, 4);
        assert_eq!(stats.per_thread.iter().sum::<usize>(), 4);
        for h in &hits {
            assert_eq!(h.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn respects_dependencies() {
        let g = diamond();
        let done: Vec<AtomicBool> = (0..g.len()).map(|_| AtomicBool::new(false)).collect();
        NativeExecutor::new(4).execute(&g, |t, _| {
            for &p in g.predecessors(t) {
                assert!(
                    done[p].load(Ordering::SeqCst),
                    "task {t} ran before predecessor {p}"
                );
            }
            done[t].store(true, Ordering::SeqCst);
        });
    }

    #[test]
    fn wide_graph_dependency_stress() {
        // 1 root -> 64 middles -> 1 sink, many times, on varying threads.
        let mut g = TaskGraph::new();
        let root = g.submit(
            TaskDesc::new(KernelKind::Gemm, Precision::Double, 4).access(0, AccessMode::Write),
        );
        let mut mids = Vec::new();
        for i in 0..64 {
            mids.push(
                g.submit(
                    TaskDesc::new(KernelKind::Gemm, Precision::Double, 4)
                        .access(0, AccessMode::Read)
                        .access(1 + i, AccessMode::Write),
                ),
            );
        }
        let mut sink = TaskDesc::new(KernelKind::Gemm, Precision::Double, 4);
        for i in 0..64 {
            sink = sink.access(1 + i, AccessMode::Read);
        }
        let sink = g.submit(sink);
        assert_eq!(g.predecessors(sink).len(), 64);
        let _ = root;

        for threads in [1, 2, 8] {
            let order = AtomicUsize::new(0);
            let stamps: Vec<AtomicUsize> = (0..g.len()).map(|_| AtomicUsize::new(0)).collect();
            let stats = NativeExecutor::new(threads).execute(&g, |t, _| {
                stamps[t].store(order.fetch_add(1, Ordering::SeqCst) + 1, Ordering::SeqCst);
            });
            assert_eq!(stats.executed, 66);
            let root_stamp = stamps[0].load(Ordering::SeqCst);
            let sink_stamp = stamps[sink].load(Ordering::SeqCst);
            assert_eq!(root_stamp, 1, "root first");
            assert_eq!(sink_stamp, 66, "sink last");
        }
    }

    #[test]
    fn empty_graph() {
        let g = TaskGraph::new();
        let stats = NativeExecutor::new(2).execute(&g, |_, _| {});
        assert_eq!(stats.executed, 0);
    }

    #[test]
    fn single_thread_executes_in_valid_order() {
        let g = diamond();
        let mut seen = Vec::new();
        let seen_cell = std::sync::Mutex::new(&mut seen);
        NativeExecutor::new(1).execute(&g, |t, _| {
            seen_cell.lock().unwrap().push(t);
        });
        assert_eq!(seen.len(), 4);
        assert_eq!(seen[0], 0);
        assert_eq!(seen[3], 3);
    }

    #[test]
    fn kernel_sees_task_desc() {
        let g = diamond();
        NativeExecutor::new(2).execute(&g, |_, desc| {
            assert_eq!(desc.kind, KernelKind::Gemm);
            assert_eq!(desc.nb, 4);
        });
    }
}
