//! Native threaded execution of a task graph.
//!
//! The virtual-time executor ([`crate::sim`]) answers "what would this run
//! cost on that platform"; this executor actually runs the DAG on host
//! threads with real kernels, which is how the numerical correctness of
//! the tiled operations is validated (see `ugpc-linalg`).
//!
//! Work-stealing runtime in the Rayon/Tokio mold: a global injector feeds
//! per-thread deques; idle threads steal; dependency counters are atomics
//! decremented by whichever thread completes the last predecessor
//! (release/acquire pairs via the deque operations order the kernel
//! effects).

use crate::control::ControlHook;
use crate::graph::TaskGraph;
use crate::observer::{ExecEvent, Observer, RunContext, RunSummary};
use crate::sim::SimOptions;
use crate::task::{TaskDesc, TaskId};
use crate::worker::{Worker, WorkerKind};
use crossbeam::deque::{Injector, Stealer, Worker as Deque};
use crossbeam::utils::Backoff;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;
use ugpc_hwsim::{EnergyReading, Joules, Secs};

/// Statistics of one native run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NativeStats {
    /// Tasks executed (always the graph size on success).
    pub executed: usize,
    /// Tasks executed by each thread.
    pub per_thread: Vec<usize>,
}

/// A threaded DAG executor.
#[derive(Debug, Clone, Copy)]
pub struct NativeExecutor {
    threads: usize,
}

impl Default for NativeExecutor {
    fn default() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }
}

impl NativeExecutor {
    pub fn new(threads: usize) -> Self {
        NativeExecutor {
            threads: threads.max(1),
        }
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute every task of `graph` exactly once, respecting all
    /// dependency edges. `kernel` is called concurrently from worker
    /// threads; disjoint-data safety is the caller's contract (the linalg
    /// layer hands out interior-mutable tiles keyed by the task id).
    pub fn execute<F>(&self, graph: &TaskGraph, kernel: F) -> NativeStats
    where
        F: Fn(TaskId, &TaskDesc) + Sync,
    {
        self.execute_observed(graph, kernel, &mut [])
    }

    /// [`execute`](Self::execute), reporting through the same
    /// [`Observer`] stream as the simulator: `TaskStart`/`TaskEnd` carry
    /// wall-clock seconds since run start, and `on_finish` delivers the
    /// wall-clock makespan (with an empty energy reading — host threads
    /// have no power model).
    ///
    /// Events are serialized through one mutex, so attaching observers
    /// perturbs timing (not correctness) of concurrent runs; pass an
    /// empty slice on the measurement path.
    pub fn execute_observed<F>(
        &self,
        graph: &TaskGraph,
        kernel: F,
        observers: &mut [&mut dyn Observer],
    ) -> NativeStats
    where
        F: Fn(TaskId, &TaskDesc) + Sync,
    {
        self.execute_hooked(graph, kernel, observers, None)
    }

    /// [`execute_observed`](Self::execute_observed) with a control-plane
    /// hook attached. The hook's sensor feed sees the same serialized
    /// `TaskStart`/`TaskEnd` stream the observers do (wall-clock
    /// timestamps since run start); a tick it requested fires as soon
    /// as the event stream passes its time. Re-cap commands are
    /// accepted and discarded — host threads have no power model to
    /// re-cap — so a controller's sensor and decision paths can be
    /// exercised natively, while its actuation is simulator-only.
    pub fn execute_controlled<F>(
        &self,
        graph: &TaskGraph,
        kernel: F,
        observers: &mut [&mut dyn Observer],
        hook: &mut dyn ControlHook,
    ) -> NativeStats
    where
        F: Fn(TaskId, &TaskDesc) + Sync,
    {
        self.execute_hooked(graph, kernel, observers, Some(hook))
    }

    fn execute_hooked<F>(
        &self,
        graph: &TaskGraph,
        kernel: F,
        observers: &mut [&mut dyn Observer],
        mut hook: Option<&mut dyn ControlHook>,
    ) -> NativeStats
    where
        F: Fn(TaskId, &TaskDesc) + Sync,
    {
        // Each host thread presents as one CPU-core worker.
        let workers: Vec<Worker> = (0..self.threads)
            .map(|id| Worker {
                id,
                kind: WorkerKind::CpuCore {
                    package: 0,
                    core: id,
                },
            })
            .collect();
        let ctx = RunContext {
            workers: &workers,
            graph,
            options: SimOptions::default(),
            gpu_idle: &[],
        };
        for o in observers.iter_mut() {
            o.on_start(&ctx);
        }
        let next_tick = hook.as_deref_mut().and_then(|h| h.on_start(&ctx));

        struct Control<'h> {
            hook: &'h mut dyn ControlHook,
            next_tick: Option<Secs>,
        }
        struct Sink<'a, 'o, 'h> {
            observers: &'a mut [&'o mut dyn Observer],
            control: Option<Control<'h>>,
        }
        let epoch = Instant::now();
        let sink = Mutex::new(Sink {
            observers,
            control: hook.map(|hook| Control { hook, next_tick }),
        });
        let notify = |me: usize, task: TaskId, desc: &TaskDesc, start: Secs, end: Secs| {
            // Tolerate a poisoned lock: a panicking observer on another
            // thread must not wedge the executor.
            let mut s = sink.lock().unwrap_or_else(PoisonError::into_inner);
            let s = &mut *s;
            if s.observers.is_empty() && s.control.is_none() {
                return;
            }
            let start_ev = ExecEvent::TaskStart {
                task,
                worker: me,
                at: start,
            };
            let end_ev = ExecEvent::TaskEnd {
                task,
                worker: me,
                start,
                end,
                duration: end - start,
                kind: desc.kind,
                precision: desc.precision,
                nb: desc.nb,
                priority: desc.priority,
                flops: desc.flops(),
                energy: Joules::ZERO,
            };
            for o in s.observers.iter_mut() {
                o.on_event(&start_ev);
                o.on_event(&end_ev);
            }
            if let Some(ctl) = s.control.as_mut() {
                ctl.hook.on_event(&start_ev);
                ctl.hook.on_event(&end_ev);
                // Fire every tick the stream has passed. `next_tick`
                // must strictly increase each round, so the loop always
                // terminates.
                while let Some(t) = ctl.next_tick.filter(|&t| t <= end) {
                    let decision = ctl.hook.on_tick(t, &[]);
                    ctl.next_tick = decision.next_tick.filter(|&n| n > t);
                }
            }
        };

        let stats = self.run_graph(graph, &kernel, &notify, epoch);

        let makespan = Secs(epoch.elapsed().as_secs_f64());
        let summary = RunSummary {
            makespan,
            energy: EnergyReading {
                duration: makespan,
                per_cpu: Vec::new(),
                per_gpu: Vec::new(),
            },
        };
        let s = sink.into_inner().unwrap_or_else(PoisonError::into_inner);
        for o in s.observers.iter_mut() {
            o.on_finish(&summary);
        }
        stats
    }

    fn run_graph<F, N>(
        &self,
        graph: &TaskGraph,
        kernel: &F,
        notify: &N,
        epoch: Instant,
    ) -> NativeStats
    where
        F: Fn(TaskId, &TaskDesc) + Sync,
        N: Fn(usize, TaskId, &TaskDesc, Secs, Secs) + Sync,
    {
        let n = graph.len();
        if n == 0 {
            return NativeStats {
                executed: 0,
                per_thread: vec![0; self.threads],
            };
        }

        let indeg: Vec<AtomicUsize> = graph
            .indegrees()
            .into_iter()
            .map(AtomicUsize::new)
            .collect();
        let completed = AtomicUsize::new(0);
        let injector = Injector::new();
        for t in graph.roots() {
            injector.push(t);
        }

        let deques: Vec<Deque<TaskId>> = (0..self.threads).map(|_| Deque::new_fifo()).collect();
        let stealers: Vec<Stealer<TaskId>> = deques.iter().map(Deque::stealer).collect();
        let counts: Vec<AtomicUsize> = (0..self.threads).map(|_| AtomicUsize::new(0)).collect();

        std::thread::scope(|scope| {
            for (me, local) in deques.into_iter().enumerate() {
                let injector = &injector;
                let stealers = &stealers;
                let indeg = &indeg;
                let completed = &completed;
                let counts = &counts;
                scope.spawn(move || {
                    let backoff = Backoff::new();
                    loop {
                        if completed.load(Ordering::Acquire) == n {
                            break;
                        }
                        let task = local.pop().or_else(|| {
                            // Drain the injector, then try stealing.
                            std::iter::repeat_with(|| {
                                injector.steal_batch_and_pop(&local).or_else(|| {
                                    stealers
                                        .iter()
                                        .map(|s| s.steal())
                                        .collect::<crossbeam::deque::Steal<_>>()
                                })
                            })
                            .find(|s| !s.is_retry())
                            .and_then(|s| s.success())
                        });
                        let Some(task) = task else {
                            backoff.snooze();
                            continue;
                        };
                        backoff.reset();

                        let desc = graph.task(task);
                        let start = Secs(epoch.elapsed().as_secs_f64());
                        kernel(task, desc);
                        let end = Secs(epoch.elapsed().as_secs_f64());
                        notify(me, task, desc, start, end);
                        counts[me].fetch_add(1, Ordering::Relaxed);

                        for &s in graph.successors(task) {
                            // The last predecessor to finish releases the
                            // successor.
                            if indeg[s].fetch_sub(1, Ordering::AcqRel) == 1 {
                                local.push(s);
                            }
                        }
                        completed.fetch_add(1, Ordering::Release);
                    }
                });
            }
        });

        NativeStats {
            executed: completed.load(Ordering::Acquire),
            per_thread: counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{AccessMode, KernelKind};
    use std::sync::atomic::AtomicBool;
    use ugpc_hwsim::Precision;

    fn diamond() -> TaskGraph {
        // 0 -> {1, 2} -> 3 via data deps on tiles.
        let mut g = TaskGraph::new();
        let t = |accesses: &[(usize, AccessMode)]| {
            let mut d = TaskDesc::new(KernelKind::Gemm, Precision::Double, 4);
            for &(id, m) in accesses {
                d = d.access(id, m);
            }
            d
        };
        g.submit(t(&[(0, AccessMode::Write)]));
        g.submit(t(&[(0, AccessMode::Read), (1, AccessMode::Write)]));
        g.submit(t(&[(0, AccessMode::Read), (2, AccessMode::Write)]));
        g.submit(t(&[(1, AccessMode::Read), (2, AccessMode::Read)]));
        g
    }

    #[test]
    fn executes_every_task_once() {
        let g = diamond();
        let hits: Vec<AtomicUsize> = (0..g.len()).map(|_| AtomicUsize::new(0)).collect();
        let stats = NativeExecutor::new(4).execute(&g, |t, _| {
            hits[t].fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(stats.executed, 4);
        assert_eq!(stats.per_thread.iter().sum::<usize>(), 4);
        for h in &hits {
            assert_eq!(h.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn respects_dependencies() {
        let g = diamond();
        let done: Vec<AtomicBool> = (0..g.len()).map(|_| AtomicBool::new(false)).collect();
        NativeExecutor::new(4).execute(&g, |t, _| {
            for &p in g.predecessors(t) {
                assert!(
                    done[p].load(Ordering::SeqCst),
                    "task {t} ran before predecessor {p}"
                );
            }
            done[t].store(true, Ordering::SeqCst);
        });
    }

    #[test]
    fn wide_graph_dependency_stress() {
        // 1 root -> 64 middles -> 1 sink, many times, on varying threads.
        let mut g = TaskGraph::new();
        let root = g.submit(
            TaskDesc::new(KernelKind::Gemm, Precision::Double, 4).access(0, AccessMode::Write),
        );
        let mut mids = Vec::new();
        for i in 0..64 {
            mids.push(
                g.submit(
                    TaskDesc::new(KernelKind::Gemm, Precision::Double, 4)
                        .access(0, AccessMode::Read)
                        .access(1 + i, AccessMode::Write),
                ),
            );
        }
        let mut sink = TaskDesc::new(KernelKind::Gemm, Precision::Double, 4);
        for i in 0..64 {
            sink = sink.access(1 + i, AccessMode::Read);
        }
        let sink = g.submit(sink);
        assert_eq!(g.predecessors(sink).len(), 64);
        let _ = root;

        for threads in [1, 2, 8] {
            let order = AtomicUsize::new(0);
            let stamps: Vec<AtomicUsize> = (0..g.len()).map(|_| AtomicUsize::new(0)).collect();
            let stats = NativeExecutor::new(threads).execute(&g, |t, _| {
                stamps[t].store(order.fetch_add(1, Ordering::SeqCst) + 1, Ordering::SeqCst);
            });
            assert_eq!(stats.executed, 66);
            let root_stamp = stamps[0].load(Ordering::SeqCst);
            let sink_stamp = stamps[sink].load(Ordering::SeqCst);
            assert_eq!(root_stamp, 1, "root first");
            assert_eq!(sink_stamp, 66, "sink last");
        }
    }

    #[test]
    fn empty_graph() {
        let g = TaskGraph::new();
        let stats = NativeExecutor::new(2).execute(&g, |_, _| {});
        assert_eq!(stats.executed, 0);
    }

    #[test]
    fn single_thread_executes_in_valid_order() {
        let g = diamond();
        let mut seen = Vec::new();
        let seen_cell = std::sync::Mutex::new(&mut seen);
        NativeExecutor::new(1).execute(&g, |t, _| {
            seen_cell
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(t);
        });
        assert_eq!(seen.len(), 4);
        assert_eq!(seen[0], 0);
        assert_eq!(seen[3], 3);
    }

    #[test]
    fn observers_see_the_native_stream() {
        use crate::observer::{EventLog, ExecEvent, Observer, StatsCollector};

        let g = diamond();
        let mut log = EventLog::new();
        let mut stats = StatsCollector::new();
        let exec_stats = {
            let mut obs: [&mut dyn Observer; 2] = [&mut log, &mut stats];
            NativeExecutor::new(2).execute_observed(&g, |_, _| {}, &mut obs)
        };
        assert_eq!(exec_stats.executed, 4);
        assert_eq!(log.completions().len(), 4);
        assert_eq!(stats.stats().tasks, 4);
        assert_eq!(stats.stats().cpu_tasks, 4, "native workers are CPU cores");
        // The serialized stream respects DAG order: task 0 ends before
        // task 3 starts.
        let end0 = log
            .events
            .iter()
            .position(|e| matches!(e, ExecEvent::TaskEnd { task: 0, .. }))
            .expect("task 0 ends");
        let start3 = log
            .events
            .iter()
            .position(|e| matches!(e, ExecEvent::TaskStart { task: 3, .. }))
            .expect("task 3 starts");
        assert!(end0 < start3, "sink started before its predecessor ended");
        let summary = log.summary.expect("on_finish delivered");
        assert!(summary.makespan >= ugpc_hwsim::Secs::ZERO);
        assert!(summary.energy.per_gpu.is_empty(), "no native power model");
    }

    #[test]
    fn control_hook_sees_the_native_stream() {
        use crate::control::{ControlDecision, ControlHook, RecapEvent};
        use crate::observer::RunContext;
        use ugpc_hwsim::Watts;

        struct Probe {
            events: usize,
            ticks: usize,
        }
        impl ControlHook for Probe {
            fn on_start(&mut self, _ctx: &RunContext<'_>) -> Option<Secs> {
                Some(Secs::ZERO)
            }
            fn on_event(&mut self, _ev: &ExecEvent) {
                self.events += 1;
            }
            fn on_tick(&mut self, now: Secs, caps: &[Watts]) -> ControlDecision {
                assert!(caps.is_empty(), "no native power model");
                self.ticks += 1;
                // Re-caps are discarded natively; emitting one is harmless.
                ControlDecision {
                    recaps: vec![RecapEvent {
                        t: now,
                        device: 0,
                        cap: Watts(100.0),
                    }],
                    next_tick: None,
                }
            }
        }

        let g = diamond();
        let mut probe = Probe {
            events: 0,
            ticks: 0,
        };
        let stats = NativeExecutor::new(2).execute_controlled(&g, |_, _| {}, &mut [], &mut probe);
        assert_eq!(stats.executed, 4);
        assert_eq!(probe.events, 8, "start+end per task reach the sensor feed");
        assert_eq!(probe.ticks, 1, "the requested tick fired once");
    }

    #[test]
    fn kernel_sees_task_desc() {
        let g = diamond();
        NativeExecutor::new(2).execute(&g, |_, desc| {
            assert_eq!(desc.kind, KernelKind::Gemm);
            assert_eq!(desc.nb, 4);
        });
    }
}
