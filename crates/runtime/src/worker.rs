//! Worker topology: one worker per CPU core (minus the cores StarPU
//! dedicates to driving each GPU) plus one worker per GPU.

use crate::data::MemNode;
use serde::{Deserialize, Serialize};
use ugpc_hwsim::{CpuSpec, PlatformSpec};

pub type WorkerId = usize;

/// The execution resource behind a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkerKind {
    /// A CPU core: (package index, core index within the package).
    CpuCore { package: usize, core: usize },
    /// A whole GPU (StarPU runs one worker per CUDA device).
    Gpu { device: usize },
}

/// One schedulable worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Worker {
    pub id: WorkerId,
    pub kind: WorkerKind,
}

impl Worker {
    /// The memory node this worker computes from.
    pub fn mem_node(&self) -> MemNode {
        match self.kind {
            WorkerKind::CpuCore { .. } => MemNode::Host,
            WorkerKind::Gpu { device } => MemNode::Gpu(device),
        }
    }

    pub fn is_gpu(&self) -> bool {
        matches!(self.kind, WorkerKind::Gpu { .. })
    }

    pub fn short_name(&self) -> String {
        match self.kind {
            WorkerKind::CpuCore { package, core } => format!("cpu{package}.{core}"),
            WorkerKind::Gpu { device } => format!("gpu{device}"),
        }
    }
}

/// Build the worker set for a platform, reserving one core per GPU as its
/// driver (StarPU's default: a CUDA worker pins a host core for kernel
/// submission and transfers; that core takes no tasks). Driver cores are
/// taken round-robin from the packages, mirroring how `hwloc` spreads
/// them.
///
/// Returns the workers and, per package, the number of task-capable cores
/// (used to provision package frequency under RAPL caps).
pub fn build_workers(spec: &PlatformSpec) -> (Vec<Worker>, Vec<usize>) {
    let mut workers = Vec::new();
    let mut capable = Vec::new();
    build_workers_into(spec, &mut workers, &mut capable);
    (workers, capable)
}

/// [`build_workers`] into caller-owned buffers (arena-reuse path: same
/// worker table, no allocation).
pub fn build_workers_into(
    spec: &PlatformSpec,
    workers: &mut Vec<Worker>,
    capable: &mut Vec<usize>,
) {
    workers.clear();
    capable.clear();
    let cores_per_pkg = CpuSpec::of(spec.cpu_model).cores;
    let mut reserved = vec![0usize; spec.cpu_count];
    for g in 0..spec.gpu_count {
        // `% cpu_count` keeps the index in range by construction.
        reserved[g % spec.cpu_count] += 1; // lint:allow panic-path
    }
    for (pkg, &resv) in reserved.iter().enumerate() {
        assert!(
            resv < cores_per_pkg,
            "package {pkg} has {cores_per_pkg} cores but {resv} GPUs to drive"
        );
        let usable = cores_per_pkg - resv;
        capable.push(usable);
        for core in 0..usable {
            workers.push(Worker {
                id: workers.len(),
                kind: WorkerKind::CpuCore { package: pkg, core },
            });
        }
    }
    for device in 0..spec.gpu_count {
        workers.push(Worker {
            id: workers.len(),
            kind: WorkerKind::Gpu { device },
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugpc_hwsim::PlatformId;

    #[test]
    fn intel2v100_worker_count() {
        // 24 cores − 2 driver cores + 2 GPU workers.
        let spec = PlatformSpec::of(PlatformId::Intel2V100);
        let (workers, capable) = build_workers(&spec);
        assert_eq!(workers.len(), 24);
        assert_eq!(workers.iter().filter(|w| w.is_gpu()).count(), 2);
        assert_eq!(capable, vec![11, 11]);
    }

    #[test]
    fn amd4a100_worker_count() {
        // 32 cores − 4 driver cores + 4 GPU workers.
        let spec = PlatformSpec::of(PlatformId::Amd4A100);
        let (workers, capable) = build_workers(&spec);
        assert_eq!(workers.len(), 32);
        assert_eq!(workers.iter().filter(|w| w.is_gpu()).count(), 4);
        assert_eq!(capable, vec![28]);
    }

    #[test]
    fn amd2a100_worker_count() {
        // 64 cores − 2 driver cores + 2 GPU workers.
        let spec = PlatformSpec::of(PlatformId::Amd2A100);
        let (workers, capable) = build_workers(&spec);
        assert_eq!(workers.len(), 64);
        assert_eq!(capable, vec![31, 31]);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let spec = PlatformSpec::of(PlatformId::Amd4A100);
        let (workers, _) = build_workers(&spec);
        for (i, w) in workers.iter().enumerate() {
            assert_eq!(w.id, i);
        }
        // CPU workers come first, GPUs last.
        assert!(workers.last().unwrap().is_gpu());
        assert!(!workers.first().unwrap().is_gpu());
    }

    #[test]
    fn mem_nodes() {
        let spec = PlatformSpec::of(PlatformId::Intel2V100);
        let (workers, _) = build_workers(&spec);
        for w in &workers {
            match w.kind {
                WorkerKind::CpuCore { .. } => assert_eq!(w.mem_node(), MemNode::Host),
                WorkerKind::Gpu { device } => assert_eq!(w.mem_node(), MemNode::Gpu(device)),
            }
        }
    }

    #[test]
    fn short_names() {
        let w = Worker {
            id: 0,
            kind: WorkerKind::CpuCore {
                package: 1,
                core: 3,
            },
        };
        assert_eq!(w.short_name(), "cpu1.3");
        let g = Worker {
            id: 1,
            kind: WorkerKind::Gpu { device: 2 },
        };
        assert_eq!(g.short_name(), "gpu2");
    }
}
