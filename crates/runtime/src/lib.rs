//! # ugpc-runtime — a StarPU-like task-based runtime system
//!
//! The software layer the paper builds on (§III): applications submit a
//! DAG of tile tasks with data access modes and priorities; the runtime
//! infers dependencies, calibrates per-worker history performance models,
//! and schedules across CPU cores and GPUs.
//!
//! Two executors share the same graphs and schedulers:
//!
//! * [`sim`] — a deterministic virtual-time executor over the simulated
//!   node of `ugpc-hwsim`, with DMA transfer engines and exact energy
//!   integration. All paper experiments run here.
//! * [`native`] — a crossbeam work-stealing executor that runs the same
//!   DAGs on real host threads with real kernels, validating that the
//!   dependency machinery executes correctly (not just in virtual time).
//!
//! Schedulers ([`sched`]) cover StarPU's published family: `eager`,
//! `random`, `dm`, `dmda`, and the paper's `dmdas`, plus an energy-aware
//! extension from the paper's future-work list.
//!
//! Both executors report through one typed event stream ([`observer`]):
//! run statistics ([`trace::TraceBuilder`]), Perfetto/Chrome exports
//! ([`export::PerfettoSink`]), per-device power timelines ([`timeline`]),
//! and progress/stats meters are all observers over that stream.

pub mod arena;
pub mod control;
pub mod data;
pub mod des;
pub mod export;
pub mod graph;
pub mod memory;
pub mod native;
pub mod observer;
pub mod perfmodel;
pub mod sched;
pub mod sim;
pub mod task;
pub mod timeline;
pub mod trace;
pub mod worker;

pub use arena::{with_run_arena, RunArena};
pub use control::{ControlDecision, ControlHook, RecapEvent, SimEvent};
pub use data::{DataId, DataRegistry, MemNode};
pub use des::{set_backend_override, EventQueue, QueueBackend};
pub use export::{chrome_trace, PerfettoSink, TraceError};
pub use graph::TaskGraph;
pub use memory::GpuMemory;
pub use native::{NativeExecutor, NativeStats};
pub use observer::{
    EventLog, ExecEvent, ExecStats, Observer, Progress, RunContext, RunSummary, StatsCollector,
};
pub use perfmodel::PerfModel;
pub use sched::{SchedPolicy, SchedView, Scheduler};
pub use sim::{simulate, simulate_controlled, simulate_observed, simulate_with_model, SimOptions};
pub use task::{distinct_footprints, AccessMode, Footprint, KernelKind, TaskDesc, TaskId};
pub use timeline::{PowerProfile, PowerTimeline};
pub use trace::{RunTrace, TaskRecord, TraceBuilder};
pub use worker::{build_workers, build_workers_into, Worker, WorkerId, WorkerKind};
