//! The virtual-time executor: runs a task graph on a simulated node under
//! a scheduling policy, producing exact timing and energy.
//!
//! Event-driven greedy list scheduling, matching StarPU's dm-family
//! behaviour: tasks are assigned to worker queues the moment they become
//! ready (in scheduler-defined order), using the calibrated performance
//! models; workers drain their queues; DMA engines (one per GPU and
//! direction) serialize transfers; devices integrate their own energy.
//!
//! The executor keeps only *execution* state (queue drain times, DMA
//! engines, residency, the ready frontier); every statistic is emitted as
//! an [`ExecEvent`](crate::observer::ExecEvent) through the observer
//! pipeline — [`simulate`] is a thin wrapper attaching a
//! [`TraceBuilder`](crate::trace::TraceBuilder) to [`simulate_observed`].

use crate::arena::with_run_arena;
use crate::control::{ControlHook, SimEvent};
use crate::data::{DataRegistry, MemNode};
use crate::des::QueueBackend;
use crate::graph::TaskGraph;
use crate::memory::GpuMemory;
use crate::observer::{emit, ExecEvent, Observer, RunContext, RunSummary};
use crate::perfmodel::PerfModel;
use crate::sched::{SchedPolicy, SchedView};
use crate::task::distinct_footprints;
use crate::trace::{RunTrace, TraceBuilder};
use crate::worker::{build_workers_into, WorkerKind};
use ugpc_hwsim::{EnergyProbe, Joules, Node, Secs, Watts};

/// Executor options.
#[derive(Debug, Clone, Copy)]
pub struct SimOptions {
    pub policy: SchedPolicy,
    /// Retain per-task records (needed for Gantt/Fig. 5-style breakdowns).
    pub keep_records: bool,
    /// Enforce GPU memory capacity with LRU eviction and writebacks. The
    /// paper's problem sizes exceed HBM several times over, so real runs
    /// continuously re-stream tiles; disable only for controlled studies.
    pub enforce_gpu_memory: bool,
    /// Feed observed execution times back into the history model during
    /// the run (StarPU's online refinement). Disable to study frozen /
    /// stale models.
    pub refine_models: bool,
    /// Event-queue backend for the completion and resync queues. The
    /// default is the ambient resolution (process override, then
    /// `UGPC_QUEUE`, then calendar) — both backends are proven to pop
    /// identically, so this is a performance knob, never a semantic one.
    pub queue: QueueBackend,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            policy: SchedPolicy::Dmdas,
            keep_records: false,
            enforce_gpu_memory: true,
            refine_models: true,
            queue: QueueBackend::resolve(),
        }
    }
}

/// Run `graph` on `node`: calibrates a fresh performance model at the
/// node's *current power caps* (the paper's protocol — recalibration after
/// every cap change), then executes.
pub fn simulate(
    node: &mut Node,
    graph: &TaskGraph,
    data: &mut DataRegistry,
    options: SimOptions,
) -> RunTrace {
    let mut perf = PerfModel::new();
    simulate_with_model(node, graph, data, options, &mut perf)
}

/// Like [`simulate`] but reusing (and extending) a caller-provided
/// performance model — the model must have been calibrated at the same
/// power caps, or scheduling decisions will be based on stale estimates
/// (which is itself an interesting experiment).
pub fn simulate_with_model(
    node: &mut Node,
    graph: &TaskGraph,
    data: &mut DataRegistry,
    options: SimOptions,
    perf: &mut PerfModel,
) -> RunTrace {
    let mut builder = TraceBuilder::new();
    {
        let mut observers: [&mut dyn Observer; 1] = [&mut builder];
        simulate_observed(node, graph, data, options, perf, &mut observers);
    }
    builder.into_trace()
}

/// The core executor: run `graph` on `node`, emitting the event stream to
/// `observers` and returning the run-level summary. Observers are
/// read-only witnesses — nothing they do can perturb virtual time,
/// scheduling, or device state (see [`crate::observer`]).
pub fn simulate_observed(
    node: &mut Node,
    graph: &TaskGraph,
    data: &mut DataRegistry,
    options: SimOptions,
    perf: &mut PerfModel,
    observers: &mut [&mut dyn Observer],
) -> RunSummary {
    with_run_arena(|arena| {
        simulate_in_arena(arena, node, graph, data, options, perf, observers, None)
    })
}

/// [`simulate_observed`] with a control-plane hook attached. The hook
/// sees the same live event stream the observers do, but — unlike
/// observers, which are read-only witnesses — may schedule
/// [`RecapEvent`](crate::control::RecapEvent)s through the DES event
/// queue that change device power limits while the DAG executes (see
/// [`crate::control`] for the ordering and determinism contract). A
/// quiescent hook is outcome-neutral; an active one deliberately
/// changes the run.
pub fn simulate_controlled(
    node: &mut Node,
    graph: &TaskGraph,
    data: &mut DataRegistry,
    options: SimOptions,
    perf: &mut PerfModel,
    observers: &mut [&mut dyn Observer],
    hook: &mut dyn ControlHook,
) -> RunSummary {
    with_run_arena(|arena| {
        simulate_in_arena(
            arena,
            node,
            graph,
            data,
            options,
            perf,
            observers,
            Some(hook),
        )
    })
}

/// Emit one event to the observers and, when a control plane is
/// attached, to its sensor feed.
#[inline]
fn feed(
    observers: &mut [&mut dyn Observer],
    hook: &mut Option<&mut dyn ControlHook>,
    ev: &ExecEvent,
) {
    emit(observers, ev);
    if let Some(h) = hook.as_deref_mut() {
        h.on_event(ev);
    }
}

/// [`simulate_observed`] against an explicit scratch arena. Every arena
/// field is reset to its run-initial state before first read, so a
/// recycled arena is observationally identical to a cold one (pinned by
/// the hotpath goldens and the queue-backend differentials).
#[allow(clippy::too_many_arguments)]
fn simulate_in_arena(
    arena: &mut crate::arena::RunArena,
    node: &mut Node,
    graph: &TaskGraph,
    data: &mut DataRegistry,
    options: SimOptions,
    perf: &mut PerfModel,
    observers: &mut [&mut dyn Observer],
    mut hook: Option<&mut dyn ControlHook>,
) -> RunSummary {
    // Destructure so each field borrows independently.
    let crate::arena::RunArena {
        workers,
        capable_cores,
        worker_free,
        worker_expected,
        h2d_free,
        d2h_free,
        task_worker,
        indeg,
        ready,
        batch,
        completed,
        footprints,
        missing,
        events,
        resync,
    } = arena;

    build_workers_into(node.spec(), workers, capable_cores);
    let workers: &[crate::worker::Worker] = workers;
    for (p, pkg) in node.cpus_mut().iter_mut().enumerate() {
        pkg.set_active_workers(capable_cores[p]);
    }

    // Calibration runs for every distinct footprint not yet known.
    distinct_footprints(graph.tasks(), footprints);
    missing.clear();
    missing.extend(footprints.iter().copied().filter(|fp| {
        workers.iter().any(|w| {
            let capable = if w.is_gpu() {
                fp.kind.gpu_capable()
            } else {
                fp.kind.cpu_capable()
            };
            capable && !perf.is_calibrated(*fp, w.id)
        })
    }));
    perf.calibrate(node, workers, missing);

    let gpu_idle: Vec<Watts> = node.gpus().iter().map(|g| g.spec().idle_power).collect();
    {
        let ctx = RunContext {
            workers,
            graph,
            options,
            gpu_idle: &gpu_idle,
        };
        for o in observers.iter_mut() {
            o.on_start(&ctx);
        }
    }
    // The control plane sees the same run context; its answer is the
    // first tick time (pushed once the event queue is reset below).
    let first_tick: Option<Secs> = hook.as_deref_mut().and_then(|h| {
        let ctx = RunContext {
            workers,
            graph,
            options,
            gpu_idle: &gpu_idle,
        };
        h.on_start(&ctx)
    });

    // Fresh run state.
    data.reset_to_host();
    node.reset_energy();
    let probe = EnergyProbe::start(node, Secs::ZERO);
    // Sanitizer: independent per-GPU counter snapshots, so the probe's
    // reading can be cross-checked against a second integration at the
    // end of the run.
    #[cfg(feature = "sanitize")]
    let gpu_energy_at_start: Vec<Joules> =
        node.gpus().iter().map(|g| g.energy(Secs::ZERO)).collect();
    // Sanitizer: completion time of every finished task, to assert that
    // no task starts before all of its predecessors ended.
    #[cfg(feature = "sanitize")]
    let mut task_end: Vec<Option<Secs>> = vec![None; graph.len()];

    let n_gpus = node.gpus().len();
    let mut gpu_mem: Vec<GpuMemory> = node
        .gpus()
        .iter()
        .map(|g| GpuMemory::new(g.index(), g.spec().mem_capacity))
        .collect();
    task_worker.clear();
    task_worker.resize(graph.len(), usize::MAX);
    let links = *node.links();
    let mut scheduler = options.policy.build();
    // Actual queue-drain time per worker (drives execution) and the
    // model-predicted one (drives scheduling decisions — StarPU's
    // `expected_end`; they coincide when models are exact, and diverge
    // under stale or noisy calibration).
    worker_free.clear();
    worker_free.resize(workers.len(), Secs::ZERO);
    worker_expected.clear();
    worker_expected.resize(workers.len(), Secs::ZERO);
    // Incremental replacement for the old scan-all-workers resync: only
    // workers whose prediction ran ahead of their actual drain time are
    // candidates, keyed by the time they actually go idle. Resync pops
    // are legitimately non-monotone (candidates can sit in the past), so
    // the queue is constructed unmonitored — see `RunArena::new`.
    resync.reset(options.queue);
    h2d_free.clear();
    h2d_free.resize(n_gpus, Secs::ZERO);
    d2h_free.clear();
    d2h_free.resize(n_gpus, Secs::ZERO);
    graph.indegrees_into(indeg);
    ready.clear();
    ready.extend((0..graph.len()).filter(|&t| indeg[t] == 0));
    events.reset(options.queue);
    if let Some(t0) = first_tick {
        events.push(t0.max(Secs::ZERO), SimEvent::ControlTick);
    }
    // Scratch for the per-tick cap snapshot handed to the hook.
    let mut cap_now: Vec<Watts> = Vec::new();
    let mut now = Secs::ZERO;
    let mut remaining = graph.len();

    // Reused across loop iterations (the ordered ready batch and the
    // tasks completing at one timestamp) instead of per-batch Vecs.
    batch.clear();
    completed.clear();

    while remaining > 0 {
        if !ready.is_empty() {
            // Order the batch, then commit each task to a worker.
            {
                let view = SchedView {
                    graph,
                    workers,
                    worker_free: worker_expected.as_slice(),
                    perf,
                    data,
                    links: &links,
                    now,
                };
                scheduler.order(ready, &view);
            }
            std::mem::swap(batch, ready);
            for &task in batch.iter() {
                let wid = {
                    let view = SchedView {
                        graph,
                        workers,
                        worker_free: worker_expected.as_slice(),
                        perf,
                        data,
                        links: &links,
                        now,
                    };
                    scheduler.choose(task, &view)
                };
                // Advance the model-predicted queue end for the chosen
                // worker (what the scheduler believes it just committed).
                {
                    let view = SchedView {
                        graph,
                        workers,
                        worker_free: worker_expected.as_slice(),
                        perf,
                        data,
                        links: &links,
                        now,
                    };
                    let est = view.transfer_estimate(task, &workers[wid])
                        + view.exec_estimate(task, &workers[wid]);
                    worker_expected[wid] = now.max(worker_expected[wid]) + est;
                }
                if worker_expected[wid] > worker_free[wid] {
                    resync.push(worker_free[wid], wid);
                }
                let worker = workers[wid];
                let desc = graph.task(task);
                let dst = worker.mem_node();
                let mut data_ready = now;
                feed(
                    observers,
                    &mut hook,
                    &ExecEvent::TaskAssigned {
                        task,
                        worker: wid,
                        at: now,
                    },
                );

                // GPU memory management: make room for (and pin) every
                // operand before planning the fetches.
                if options.enforce_gpu_memory {
                    if let MemNode::Gpu(g) = dst {
                        let operands = graph.unique_data(task);
                        let incoming: ugpc_hwsim::Bytes = operands
                            .iter()
                            .filter(|&&d| !gpu_mem[g].is_resident(d))
                            .map(|&d| data.bytes(d))
                            .sum();
                        // Pin first so make_room cannot evict our own
                        // already-resident operands.
                        for &d in operands {
                            if gpu_mem[g].is_resident(d) {
                                gpu_mem[g].pin(d);
                            }
                        }
                        for (victim, writeback) in gpu_mem[g].make_room(incoming, data) {
                            feed(
                                observers,
                                &mut hook,
                                &ExecEvent::Eviction {
                                    data: victim,
                                    device: g,
                                    at: now,
                                },
                            );
                            if writeback {
                                let bytes = data.bytes(victim);
                                let st = now.max(d2h_free[g]);
                                let en = st + links.d2h_time(bytes);
                                d2h_free[g] = en;
                                data.add_replica(victim, MemNode::Host);
                                feed(
                                    observers,
                                    &mut hook,
                                    &ExecEvent::Writeback {
                                        data: victim,
                                        device: g,
                                        bytes,
                                        start: st,
                                        end: en,
                                    },
                                );
                                // Space is free once the copy-out lands.
                                data_ready = data_ready.max(en);
                            }
                            data.invalidate_at(victim, MemNode::Gpu(g));
                        }
                        // Allocate + pin incoming operands (transfers for
                        // reads are planned below; writes just allocate).
                        for &d in operands {
                            if !gpu_mem[g].is_resident(d) {
                                gpu_mem[g].note_resident(d, data.bytes(d));
                                gpu_mem[g].pin(d);
                            }
                        }
                    }
                }

                // Plan transfers for missing read operands.
                for &(d, mode) in &desc.data {
                    if !mode.reads() {
                        continue;
                    }
                    let Some(src) = data.transfer_source(d, dst) else {
                        continue;
                    };
                    let bytes = data.bytes(d);
                    // Every reserved engine slot becomes one transfer
                    // start/end pair on the stream (a staged copy is two).
                    let mut hop = |s: Secs, e: Secs, src: MemNode, dst: MemNode| {
                        feed(
                            observers,
                            &mut hook,
                            &ExecEvent::TransferStart {
                                data: d,
                                src,
                                dst,
                                bytes,
                                at: s,
                            },
                        );
                        feed(
                            observers,
                            &mut hook,
                            &ExecEvent::TransferEnd {
                                data: d,
                                src,
                                dst,
                                bytes,
                                start: s,
                                end: e,
                            },
                        );
                    };
                    let done = match (src, dst) {
                        (MemNode::Host, MemNode::Gpu(g)) => {
                            let s = now.max(h2d_free[g]);
                            let e = s + links.h2d_time(bytes);
                            h2d_free[g] = e;
                            hop(s, e, src, dst);
                            e
                        }
                        (MemNode::Gpu(g), MemNode::Host) => {
                            let s = now.max(d2h_free[g]);
                            let e = s + links.d2h_time(bytes);
                            d2h_free[g] = e;
                            hop(s, e, src, dst);
                            e
                        }
                        (MemNode::Gpu(sg), MemNode::Gpu(dg)) => {
                            if links.d2d.is_some() {
                                // Direct NVLink copy occupies both engines.
                                let s = now.max(d2h_free[sg]).max(h2d_free[dg]);
                                let e = s + links.d2d_time(bytes);
                                d2h_free[sg] = e;
                                h2d_free[dg] = e;
                                hop(s, e, src, dst);
                                e
                            } else {
                                // Staged through host memory, two hops.
                                let s1 = now.max(d2h_free[sg]);
                                let e1 = s1 + links.d2h_time(bytes);
                                d2h_free[sg] = e1;
                                data.add_replica(d, MemNode::Host);
                                hop(s1, e1, src, MemNode::Host);
                                let s2 = e1.max(h2d_free[dg]);
                                let e2 = s2 + links.h2d_time(bytes);
                                h2d_free[dg] = e2;
                                hop(s2, e2, MemNode::Host, dst);
                                e2
                            }
                        }
                        (MemNode::Host, MemNode::Host) => now,
                    };
                    data.add_replica(d, dst);
                    data_ready = data_ready.max(done);
                }

                // Execute on the device model; it records its own energy.
                let t_start = worker_free[wid].max(data_ready);
                #[cfg(feature = "sanitize")]
                for &p in graph.predecessors(task) {
                    let end = task_end[p].unwrap_or_else(|| {
                        panic!("sanitize: task {task} scheduled before predecessor {p} finished")
                    });
                    assert!(
                        t_start >= end,
                        "sanitize: task {task} starts at {t_start} before predecessor {p} \
                         ends at {end}"
                    );
                }
                feed(
                    observers,
                    &mut hook,
                    &ExecEvent::TaskStart {
                        task,
                        worker: wid,
                        at: t_start,
                    },
                );
                let (duration, energy, power) = match worker.kind {
                    WorkerKind::Gpu { device } => {
                        let run = node.gpu_mut(device).execute(&desc.kernel_work(), t_start);
                        (run.time, run.energy(), run.power)
                    }
                    WorkerKind::CpuCore { package, core } => {
                        let run = node.cpus_mut()[package].execute(
                            core,
                            desc.flops(),
                            desc.nb,
                            desc.precision,
                            t_start,
                        );
                        (run.time, run.core_power * run.time, run.core_power)
                    }
                };
                let t_end = t_start + duration;
                #[cfg(feature = "sanitize")]
                {
                    task_end[task] = Some(t_end);
                }
                worker_free[wid] = t_end;
                if worker_expected[wid] > t_end {
                    resync.push(t_end, wid);
                }
                feed(
                    observers,
                    &mut hook,
                    &ExecEvent::PowerSample {
                        worker: wid,
                        start: t_start,
                        end: t_end,
                        power,
                    },
                );
                feed(
                    observers,
                    &mut hook,
                    &ExecEvent::TaskEnd {
                        task,
                        worker: wid,
                        start: t_start,
                        end: t_end,
                        duration,
                        kind: desc.kind,
                        precision: desc.precision,
                        nb: desc.nb,
                        priority: desc.priority,
                        flops: desc.flops(),
                        energy,
                    },
                );

                // Apply write effects to the replica map; replicas on
                // other devices are invalidated and their memory freed.
                for &(d, mode) in &desc.data {
                    if mode.writes() {
                        if options.enforce_gpu_memory {
                            for (g, mem) in gpu_mem.iter_mut().enumerate() {
                                if MemNode::Gpu(g) != dst {
                                    mem.drop_if_present(d);
                                }
                            }
                        }
                        data.write_at(d, dst);
                    }
                }
                task_worker[task] = wid;

                // Feed the history model (online refinement, like StarPU).
                if options.refine_models {
                    perf.observe(desc.footprint(), wid, duration, energy);
                    feed(
                        observers,
                        &mut hook,
                        &ExecEvent::ModelRefine {
                            task,
                            worker: wid,
                            observed: duration,
                            energy,
                            at: t_end,
                        },
                    );
                }
                events.push(t_end, SimEvent::Task(task));
            }
            batch.clear();
        } else {
            // Advance time to the next event and drain everything at
            // that timestamp in one queue pass — the batch comes back in
            // exactly the order repeated pops would give.
            completed.clear();
            now = events
                .pop_all_eq(completed)
                .expect("deadlock: tasks remain but nothing is in flight");
            // Scheduled re-caps land first: every kernel launched from
            // here on satisfies `t_start >= now`, so a re-cap at `now`
            // governs exactly the launches at or after it, while kernels
            // already committed keep the power they drew (the device
            // splits its ledger at the transition instant).
            for ev in completed.iter() {
                if let SimEvent::Recap { device, cap } = *ev {
                    node.gpu_mut(device)
                        .recap_at(now, cap)
                        .expect("control hook emitted a cap outside the device range");
                }
            }
            // Batches without a task completion (ticks / re-caps alone)
            // must leave scheduler state untouched — no resync drain, no
            // frontier updates — so a quiescent control plane stays
            // outcome-neutral (tests/control_differential.rs).
            let has_tasks = completed.iter().any(|e| matches!(e, SimEvent::Task(_)));
            if has_tasks {
                // Resync: a worker that is actually idle has nothing
                // pending, whatever the model predicted (StarPU refreshes
                // expected_end when workers go idle). Maintained
                // incrementally: only the recorded candidates are
                // examined, not every worker.
                while resync.peek_time().is_some_and(|at| at <= now) {
                    let (_, w) = resync.pop().expect("peeked entry exists");
                    if worker_free[w] <= now && worker_expected[w] > now {
                        worker_expected[w] = now;
                    }
                }
                // Sanitizer: the candidate queue must be exhaustive —
                // after draining it, no worker may still qualify.
                #[cfg(feature = "sanitize")]
                for w in 0..workers.len() {
                    assert!(
                        !(worker_free[w] <= now && worker_expected[w] > now),
                        "sanitize: resync queue missed idle worker {w} at {now}"
                    );
                }
                for ev in completed.iter() {
                    let SimEvent::Task(task) = *ev else { continue };
                    remaining -= 1;
                    if options.enforce_gpu_memory {
                        if let WorkerKind::Gpu { device } = workers[task_worker[task]].kind {
                            for &d in graph.unique_data(task) {
                                gpu_mem[device].unpin(d);
                            }
                        }
                    }
                    for &s in graph.successors(task) {
                        indeg[s] -= 1;
                        if indeg[s] == 0 {
                            ready.push(s);
                        }
                    }
                }
            }
            // Ticks run last, after the completions at this instant, so
            // the controller's sensors include them.
            let ticked = completed.iter().any(|e| matches!(e, SimEvent::ControlTick));
            if ticked {
                let h = hook
                    .as_deref_mut()
                    .expect("ticks are only scheduled by a control hook");
                cap_now.clear();
                cap_now.extend(node.gpus().iter().map(|g| g.power_limit()));
                let decision = h.on_tick(now, &cap_now);
                for r in decision.recaps {
                    if r.t <= now {
                        // Applies before the next scheduling round, so it
                        // binds every launch at or after `now`.
                        node.gpu_mut(r.device)
                            .recap_at(now, r.cap)
                            .expect("control hook emitted a cap outside the device range");
                    } else {
                        events.push(
                            r.t,
                            SimEvent::Recap {
                                device: r.device,
                                cap: r.cap,
                            },
                        );
                    }
                }
                // A tick at or before `now` would livelock the event
                // loop; the contract requires strictly-future ticks.
                if let Some(t) = decision.next_tick {
                    if t > now {
                        events.push(t, SimEvent::ControlTick);
                    }
                }
            }
        }
    }

    // Makespan: last task end (transfers never outlive their consumer).
    let makespan = worker_free
        .iter()
        .copied()
        .fold(Secs::ZERO, Secs::max)
        .max(now);
    let energy = probe.stop(node, makespan);
    debug_assert!(
        energy.per_gpu.iter().all(|e| *e > Joules::ZERO) || graph.is_empty(),
        "every GPU burns at least idle power"
    );
    #[cfg(feature = "sanitize")]
    {
        // All tasks must have completed with recorded end times.
        assert!(
            task_end.iter().all(Option::is_some),
            "sanitize: tasks remain unfinished after the event loop drained"
        );
        // Replica coherence held to the end.
        data.assert_coherent();
        // Energy cross-check: the probe's per-GPU reading must match an
        // independent second integration of each device's ledger over
        // the same window, and the trace total must be their sum.
        for (g, (dev, &e0)) in node.gpus().iter().zip(&gpu_energy_at_start).enumerate() {
            let independent = dev.energy(makespan) - e0;
            let drift = (independent - energy.per_gpu[g]).abs();
            let tol = Joules(1e-6) + independent.abs() * 1e-9;
            assert!(
                drift <= tol,
                "sanitize: gpu {g} probe energy {} disagrees with ledger integral {}",
                energy.per_gpu[g],
                independent
            );
        }
        let per_device_sum = energy.gpu_total() + energy.cpu_total();
        let drift = (per_device_sum - energy.total()).abs();
        assert!(
            drift <= Joules(1e-6) + per_device_sum.abs() * 1e-9,
            "sanitize: trace total energy {} is not the sum of per-device integrals {}",
            energy.total(),
            per_device_sum
        );
    }

    let summary = RunSummary { makespan, energy };
    for o in observers.iter_mut() {
        o.on_finish(&summary);
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{AccessMode, KernelKind, TaskDesc};
    use crate::worker::build_workers;
    use ugpc_hwsim::{Bytes, PlatformId, Precision, Watts};

    /// A tiny GEMM-like graph: `chains` independent chains of `len`
    /// sequential updates each, on distinct tiles.
    fn chain_graph(chains: usize, len: usize, nb: usize, data: &mut DataRegistry) -> TaskGraph {
        let mut g = TaskGraph::new();
        for c in 0..chains {
            let tile = data.register(Bytes((nb * nb * 8) as f64));
            let a = data.register(Bytes((nb * nb * 8) as f64));
            for _ in 0..len {
                g.submit(
                    TaskDesc::new(KernelKind::Gemm, Precision::Double, nb)
                        .access(a, AccessMode::Read)
                        .access(tile, AccessMode::ReadWrite),
                );
            }
            let _ = c;
        }
        g
    }

    #[test]
    fn empty_graph_runs() {
        let mut node = Node::new(PlatformId::Intel2V100);
        let mut data = DataRegistry::new();
        let g = TaskGraph::new();
        let trace = simulate(&mut node, &g, &mut data, SimOptions::default());
        assert_eq!(trace.makespan, Secs::ZERO);
        assert_eq!(trace.cpu_tasks + trace.gpu_tasks, 0);
    }

    #[test]
    fn single_task_timing_matches_device() {
        let mut node = Node::new(PlatformId::Amd4A100);
        let mut data = DataRegistry::new();
        let mut g = chain_graph(1, 1, 2880, &mut data);
        let _ = &mut g;
        let trace = simulate(&mut node, &g, &mut data, SimOptions::default());
        // One task: makespan = h2d transfers + exec on the best device.
        let desc = g.task(0);
        let exec = node.gpu(0).estimate(&desc.kernel_work()).time;
        let transfer = node.links().h2d_time(Bytes((2880 * 2880 * 8) as f64));
        let expect = exec + transfer * 2.0;
        assert!(
            (trace.makespan.value() - expect.value()).abs() / expect.value() < 0.05,
            "makespan {} vs expected {}",
            trace.makespan,
            expect
        );
        assert_eq!(trace.gpu_tasks, 1);
    }

    #[test]
    fn parallel_chains_use_all_gpus() {
        let mut node = Node::new(PlatformId::Amd4A100);
        let mut data = DataRegistry::new();
        let g = chain_graph(8, 4, 2880, &mut data);
        let trace = simulate(&mut node, &g, &mut data, SimOptions::default());
        // 32 GEMMs across 4 GPUs; every GPU should get work.
        let (workers, _) = build_workers(node.spec());
        let gpu_workers: Vec<_> = workers.iter().filter(|w| w.is_gpu()).collect();
        for w in &gpu_workers {
            assert!(
                trace.worker_tasks[w.id] > 0,
                "gpu worker {} got no tasks: {:?}",
                w.id,
                trace.worker_tasks
            );
        }
        assert_eq!(trace.gpu_tasks + trace.cpu_tasks, 32);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut node = Node::new(PlatformId::Amd4A100);
            let mut data = DataRegistry::new();
            let g = chain_graph(6, 5, 1440, &mut data);
            simulate(&mut node, &g, &mut data, SimOptions::default())
        };
        let a = run();
        let b = run();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.total_energy(), b.total_energy());
        assert_eq!(a.worker_tasks, b.worker_tasks);
    }

    #[test]
    fn capped_gpus_receive_fewer_tasks() {
        // The paper's core claim (§III-B): after recalibration the
        // scheduler shifts load away from capped devices.
        let run = |cap: Option<Watts>| {
            let mut node = Node::new(PlatformId::Amd4A100);
            if let Some(c) = cap {
                // Cap GPUs 2 and 3 to the minimum.
                node.gpu_mut(2).set_power_limit(c).unwrap();
                node.gpu_mut(3).set_power_limit(c).unwrap();
            }
            let mut data = DataRegistry::new();
            let g = chain_graph(16, 8, 2880, &mut data);
            let trace = simulate(&mut node, &g, &mut data, SimOptions::default());
            let (workers, _) = build_workers(node.spec());
            let per_gpu: Vec<usize> = workers
                .iter()
                .filter(|w| w.is_gpu())
                .map(|w| trace.worker_tasks[w.id])
                .collect();
            per_gpu
        };
        let balanced = run(None);
        let unbalanced = run(Some(Watts(100.0)));
        // Uncapped: roughly even split.
        let max = *balanced.iter().max().unwrap() as f64;
        let min = *balanced.iter().min().unwrap() as f64;
        assert!(
            max / min.max(1.0) < 2.0,
            "balanced run skewed: {balanced:?}"
        );
        // Capped: GPUs 0/1 (fast) take clearly more than GPUs 2/3 (slow).
        assert!(
            unbalanced[0] + unbalanced[1] > (unbalanced[2] + unbalanced[3]) * 2,
            "unbalanced run did not shift load: {unbalanced:?}"
        );
    }

    #[test]
    fn capping_all_gpus_saves_energy_on_saturating_work() {
        let run = |cap: Option<Watts>| {
            let mut node = Node::new(PlatformId::Amd4A100);
            if let Some(c) = cap {
                for g in 0..4 {
                    node.gpu_mut(g).set_power_limit(c).unwrap();
                }
            }
            let mut data = DataRegistry::new();
            let g = chain_graph(16, 8, 5760, &mut data);
            simulate(&mut node, &g, &mut data, SimOptions::default())
        };
        let free = run(None);
        let best = run(Some(Watts(216.0))); // P_best dp
        assert!(best.makespan > free.makespan, "capping must slow the run");
        assert!(
            best.efficiency().value() > free.efficiency().value(),
            "efficiency should improve: {} vs {}",
            best.efficiency(),
            free.efficiency()
        );
    }

    #[test]
    fn records_kept_when_requested() {
        let mut node = Node::new(PlatformId::Intel2V100);
        let mut data = DataRegistry::new();
        let g = chain_graph(2, 3, 960, &mut data);
        let opts = SimOptions {
            keep_records: true,
            ..Default::default()
        };
        let trace = simulate(&mut node, &g, &mut data, opts);
        assert_eq!(trace.records.len(), 6);
        // Records are consistent: end after start, worker ids valid.
        for r in &trace.records {
            assert!(r.end > r.start);
            assert!(r.worker < trace.worker_tasks.len());
        }
    }

    #[test]
    fn energy_accounts_whole_window() {
        let mut node = Node::new(PlatformId::Intel2V100);
        let mut data = DataRegistry::new();
        let g = chain_graph(2, 2, 1920, &mut data);
        let trace = simulate(&mut node, &g, &mut data, SimOptions::default());
        // Total energy at least idle power × makespan for every device.
        let idle_floor = 2.0 * 35.0 + 2.0 * 40.0; // uncore + GPU idle
        assert!(trace.total_energy().value() >= idle_floor * trace.makespan.value() * 0.99);
        assert_eq!(trace.energy.per_gpu.len(), 2);
        assert_eq!(trace.energy.per_cpu.len(), 2);
    }
}
