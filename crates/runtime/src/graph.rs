//! The task DAG with StarPU-style implicit dependency inference.
//!
//! Tasks are submitted in program order; dependencies are inferred from
//! overlapping data accesses under sequential consistency (StarPU's
//! default): a reader depends on the last writer of each operand (RAW), a
//! writer depends on the last writer (WAW) and on every reader since
//! (WAR). Explicit edges can be added on top.

use crate::data::DataId;
use crate::task::{TaskDesc, TaskId};
use std::collections::HashMap;

/// An immutable-after-build task graph.
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    tasks: Vec<TaskDesc>,
    succs: Vec<Vec<TaskId>>,
    preds: Vec<Vec<TaskId>>,
    /// Per-task distinct operands, sorted ascending — precomputed once at
    /// submission for the executors' per-occurrence loops.
    unique_data: Vec<Vec<DataId>>,
    /// Per-datum tracking used during submission.
    last_writer: HashMap<DataId, TaskId>,
    readers_since_write: HashMap<DataId, Vec<TaskId>>,
}

impl TaskGraph {
    pub fn new() -> Self {
        Self::default()
    }

    /// Submit a task; dependencies on earlier tasks are inferred from its
    /// data accesses. Returns the new task's id.
    pub fn submit(&mut self, task: TaskDesc) -> TaskId {
        let id = self.tasks.len();
        self.succs.push(Vec::new());
        self.preds.push(Vec::new());

        // Collect dependencies first to dedupe before wiring edges.
        let mut deps: Vec<TaskId> = Vec::new();
        for &(data, mode) in &task.data {
            if mode.reads() {
                if let Some(&w) = self.last_writer.get(&data) {
                    deps.push(w); // RAW
                }
            }
            if mode.writes() {
                if let Some(&w) = self.last_writer.get(&data) {
                    deps.push(w); // WAW
                }
                if let Some(readers) = self.readers_since_write.get(&data) {
                    deps.extend(readers.iter().copied()); // WAR
                }
            }
        }
        deps.sort_unstable();
        deps.dedup();
        for d in deps {
            debug_assert!(d < id);
            self.succs[d].push(id);
            self.preds[id].push(d);
        }

        // Update per-datum tracking.
        for &(data, mode) in &task.data {
            if mode.writes() {
                self.last_writer.insert(data, id);
                self.readers_since_write.insert(data, Vec::new());
            } else {
                self.readers_since_write.entry(data).or_default().push(id);
            }
        }

        let mut unique: Vec<DataId> = task.data.iter().map(|&(d, _)| d).collect();
        unique.sort_unstable();
        unique.dedup();
        self.unique_data.push(unique);

        self.tasks.push(task);
        id
    }

    /// The task's distinct operands, sorted ascending. Precomputed at
    /// submission: the executors touch this once per task *occurrence*
    /// (memory planning, pin/unpin), which used to re-sort every time.
    pub fn unique_data(&self, id: TaskId) -> &[DataId] {
        &self.unique_data[id]
    }

    /// Add an explicit edge `from → to` (StarPU tag dependencies).
    ///
    /// Panics on forward edges (`from >= to`): submission order is the
    /// topological order and must stay acyclic by construction.
    ///
    /// Adjacency lists are kept sorted ascending (submission wires edges
    /// in increasing-id order, which preserves this for free), so the
    /// duplicate check is a binary search instead of the linear scan it
    /// used to be — explicit-edge-heavy graphs no longer degrade to
    /// O(degree) per insertion.
    pub fn add_edge(&mut self, from: TaskId, to: TaskId) {
        assert!(
            from < to,
            "explicit edge must follow submission order ({from} -> {to})"
        );
        if let Err(pos) = self.succs[from].binary_search(&to) {
            self.succs[from].insert(pos, to);
            if let Err(pos) = self.preds[to].binary_search(&from) {
                self.preds[to].insert(pos, from);
            }
        }
    }

    /// Remove the edge `from → to` if present; returns whether it existed.
    ///
    /// This is a fault-injection hook: the graph linter's tests delete
    /// inferred hazard edges and assert the deletion is flagged as a
    /// race. The per-datum submission tracking is deliberately not
    /// rewound — the graph's *declared* accesses still require the
    /// ordering, which is exactly the inconsistency the linter detects.
    pub fn remove_edge(&mut self, from: TaskId, to: TaskId) -> bool {
        let Ok(pos) = self.succs[from].binary_search(&to) else {
            return false;
        };
        self.succs[from].remove(pos);
        if let Ok(pos) = self.preds[to].binary_search(&from) {
            self.preds[to].remove(pos);
        }
        true
    }

    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    pub fn task(&self, id: TaskId) -> &TaskDesc {
        &self.tasks[id]
    }

    pub fn tasks(&self) -> &[TaskDesc] {
        &self.tasks
    }

    pub fn successors(&self, id: TaskId) -> &[TaskId] {
        &self.succs[id]
    }

    pub fn predecessors(&self, id: TaskId) -> &[TaskId] {
        &self.preds[id]
    }

    /// In-degree vector (cloned for executor bookkeeping).
    pub fn indegrees(&self) -> Vec<usize> {
        self.preds.iter().map(Vec::len).collect()
    }

    /// [`indegrees`](Self::indegrees) into a caller-owned buffer
    /// (arena-reuse path: same values, no allocation).
    pub fn indegrees_into(&self, out: &mut Vec<usize>) {
        out.clear();
        out.extend(self.preds.iter().map(Vec::len));
    }

    /// Tasks with no predecessors.
    pub fn roots(&self) -> Vec<TaskId> {
        (0..self.len())
            .filter(|&t| self.preds[t].is_empty())
            .collect()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// Total flops over all tasks.
    pub fn total_flops(&self) -> ugpc_hwsim::Flops {
        self.tasks.iter().map(|t| t.flops()).sum()
    }

    /// Count tasks of one kernel kind.
    pub fn count_kind(&self, kind: crate::task::KernelKind) -> usize {
        self.tasks.iter().filter(|t| t.kind == kind).count()
    }

    /// Length (in tasks) of the longest path — the critical path in task
    /// counts. Computed over the submission order, which is topological.
    pub fn critical_path_len(&self) -> usize {
        self.critical_path().len()
    }

    /// One longest dependency chain, as task ids in dependency order
    /// (each task is a predecessor of the next). Empty for an empty
    /// graph. Ties are broken deterministically toward the smallest task
    /// id, at both the endpoint and every hop, so repeated calls — and
    /// callers on different platforms — agree on which chain is "the"
    /// critical path.
    pub fn critical_path(&self) -> Vec<TaskId> {
        if self.is_empty() {
            return Vec::new();
        }
        // Longest-path DP over submission order (which is topological).
        let mut depth = vec![0usize; self.len()];
        let mut best_pred: Vec<Option<TaskId>> = vec![None; self.len()];
        for id in 0..self.len() {
            // preds are sorted ascending and only strict improvements
            // update, so the deepest smallest-id predecessor wins.
            for &p in &self.preds[id] {
                if depth[p] + 1 > depth[id] {
                    depth[id] = depth[p] + 1;
                    best_pred[id] = Some(p);
                }
            }
        }
        // Deepest endpoint; first occurrence = smallest id among ties.
        let mut end = 0;
        for id in 1..self.len() {
            if depth[id] > depth[end] {
                end = id;
            }
        }
        let mut path = Vec::with_capacity(depth[end] + 1);
        let mut cur = Some(end);
        while let Some(id) = cur {
            path.push(id);
            cur = best_pred[id];
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{AccessMode, KernelKind};
    use ugpc_hwsim::Precision;

    fn gemm_on(data: &[(DataId, AccessMode)]) -> TaskDesc {
        let mut t = TaskDesc::new(KernelKind::Gemm, Precision::Double, 64);
        for &(d, m) in data {
            t = t.access(d, m);
        }
        t
    }

    #[test]
    fn raw_dependency() {
        let mut g = TaskGraph::new();
        let w = g.submit(gemm_on(&[(0, AccessMode::Write)]));
        let r = g.submit(gemm_on(&[(0, AccessMode::Read)]));
        assert_eq!(g.predecessors(r), &[w]);
        assert_eq!(g.successors(w), &[r]);
    }

    #[test]
    fn war_dependency() {
        let mut g = TaskGraph::new();
        let r = g.submit(gemm_on(&[(0, AccessMode::Read)]));
        let w = g.submit(gemm_on(&[(0, AccessMode::Write)]));
        assert_eq!(g.predecessors(w), &[r]);
    }

    #[test]
    fn waw_dependency() {
        let mut g = TaskGraph::new();
        let w1 = g.submit(gemm_on(&[(0, AccessMode::Write)]));
        let w2 = g.submit(gemm_on(&[(0, AccessMode::Write)]));
        assert_eq!(g.predecessors(w2), &[w1]);
    }

    #[test]
    fn independent_readers_run_concurrently() {
        let mut g = TaskGraph::new();
        let w = g.submit(gemm_on(&[(0, AccessMode::Write)]));
        let r1 = g.submit(gemm_on(&[(0, AccessMode::Read)]));
        let r2 = g.submit(gemm_on(&[(0, AccessMode::Read)]));
        // Both readers depend only on the writer, not on each other.
        assert_eq!(g.predecessors(r1), &[w]);
        assert_eq!(g.predecessors(r2), &[w]);
        // A subsequent writer depends on both readers (WAR) and w (WAW).
        let w2 = g.submit(gemm_on(&[(0, AccessMode::ReadWrite)]));
        let mut preds = g.predecessors(w2).to_vec();
        preds.sort_unstable();
        assert_eq!(preds, vec![w, r1, r2]);
    }

    #[test]
    fn readwrite_chain_serializes() {
        // A chain of GEMM updates to the same C tile serializes — the
        // GEMM operation's K-chains rely on this.
        let mut g = TaskGraph::new();
        let ids: Vec<_> = (0..5)
            .map(|_| g.submit(gemm_on(&[(7, AccessMode::ReadWrite)])))
            .collect();
        for w in ids.windows(2) {
            assert_eq!(g.predecessors(w[1]), &[w[0]]);
        }
        assert_eq!(g.critical_path_len(), 5);
        assert_eq!(g.critical_path(), ids);
    }

    #[test]
    fn critical_path_is_a_dependency_chain() {
        // Diamond with one long arm: w → a → b → join, w → c → join.
        let mut g = TaskGraph::new();
        let w = g.submit(gemm_on(&[(0, AccessMode::Write), (1, AccessMode::Write)]));
        let a = g.submit(gemm_on(&[(0, AccessMode::ReadWrite)]));
        let b = g.submit(gemm_on(&[(0, AccessMode::ReadWrite)]));
        let _c = g.submit(gemm_on(&[(1, AccessMode::ReadWrite)]));
        let join = g.submit(gemm_on(&[(0, AccessMode::Read), (1, AccessMode::Read)]));
        let path = g.critical_path();
        assert_eq!(path, vec![w, a, b, join]);
        assert_eq!(path.len(), g.critical_path_len());
        for pair in path.windows(2) {
            assert!(
                g.predecessors(pair[1]).contains(&pair[0]),
                "{} must be a predecessor of {}",
                pair[0],
                pair[1]
            );
        }
        assert!(TaskGraph::new().critical_path().is_empty());
    }

    #[test]
    fn disjoint_data_no_edges() {
        let mut g = TaskGraph::new();
        g.submit(gemm_on(&[(0, AccessMode::ReadWrite)]));
        g.submit(gemm_on(&[(1, AccessMode::ReadWrite)]));
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.roots(), vec![0, 1]);
        assert_eq!(g.critical_path_len(), 1);
    }

    #[test]
    fn duplicate_deps_are_merged() {
        let mut g = TaskGraph::new();
        let w = g.submit(gemm_on(&[(0, AccessMode::Write), (1, AccessMode::Write)]));
        // Reads both data written by the same task: one edge, not two.
        let r = g.submit(gemm_on(&[(0, AccessMode::Read), (1, AccessMode::Read)]));
        assert_eq!(g.predecessors(r), &[w]);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn explicit_edges() {
        let mut g = TaskGraph::new();
        let a = g.submit(gemm_on(&[]));
        let b = g.submit(gemm_on(&[]));
        g.add_edge(a, b);
        g.add_edge(a, b); // idempotent
        assert_eq!(g.successors(a), &[b]);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "submission order")]
    fn forward_explicit_edge_panics() {
        let mut g = TaskGraph::new();
        let a = g.submit(gemm_on(&[]));
        let b = g.submit(gemm_on(&[]));
        g.add_edge(b, a);
    }

    #[test]
    fn remove_edge_reports_presence() {
        let mut g = TaskGraph::new();
        let w = g.submit(gemm_on(&[(0, AccessMode::Write)]));
        let r = g.submit(gemm_on(&[(0, AccessMode::Read)]));
        assert!(g.remove_edge(w, r));
        assert!(g.successors(w).is_empty());
        assert!(g.predecessors(r).is_empty());
        assert!(!g.remove_edge(w, r)); // already gone
                                       // Re-adding restores it.
        g.add_edge(w, r);
        assert_eq!(g.successors(w), &[r]);
        assert_eq!(g.predecessors(r), &[w]);
    }

    #[test]
    fn adjacency_stays_sorted_under_explicit_edges() {
        let mut g = TaskGraph::new();
        for _ in 0..64 {
            g.submit(gemm_on(&[]));
        }
        // Insert explicit edges out of order, with duplicates.
        for &to in &[40usize, 8, 56, 8, 24, 63, 16, 40] {
            g.add_edge(0, to);
        }
        for &from in &[9usize, 3, 31, 3, 17] {
            g.add_edge(from, 62);
        }
        assert_eq!(g.successors(0), &[8, 16, 24, 40, 56, 63]);
        assert_eq!(g.predecessors(62), &[3, 9, 17, 31]);
    }

    #[test]
    fn dense_explicit_fanout_is_fast() {
        // Bench-sized regression guard for the old O(degree) duplicate
        // scan in add_edge: a hub with tens of thousands of successors
        // was quadratic (~1e9 comparisons here); with sorted adjacency
        // and binary search it completes instantly even in debug builds.
        const N: usize = 30_000;
        let mut g = TaskGraph::new();
        for _ in 0..N {
            g.submit(gemm_on(&[]));
        }
        for to in 1..N {
            g.add_edge(0, to);
        }
        // Duplicate pass over the full fan-out is pure binary search.
        for to in 1..N {
            g.add_edge(0, to);
        }
        assert_eq!(g.successors(0).len(), N - 1);
        assert_eq!(g.edge_count(), N - 1);
        assert!(g.successors(0).windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn unique_data_is_sorted_and_deduped() {
        let mut g = TaskGraph::new();
        let t = g.submit(gemm_on(&[
            (7, AccessMode::Read),
            (3, AccessMode::Write),
            (7, AccessMode::ReadWrite),
            (1, AccessMode::Read),
        ]));
        assert_eq!(g.unique_data(t), &[1, 3, 7]);
        let empty = g.submit(gemm_on(&[]));
        assert!(g.unique_data(empty).is_empty());
    }

    #[test]
    fn indegrees_match_preds() {
        let mut g = TaskGraph::new();
        let w = g.submit(gemm_on(&[(0, AccessMode::Write)]));
        let _r1 = g.submit(gemm_on(&[(0, AccessMode::Read)]));
        let _r2 = g.submit(gemm_on(&[(0, AccessMode::Read)]));
        assert_eq!(g.indegrees(), vec![0, 1, 1]);
        assert_eq!(g.roots(), vec![w]);
    }
}
