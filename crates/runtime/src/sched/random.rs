//! StarPU's `random` policy: each task goes to a capable worker drawn
//! with probability proportional to the worker's relative speed on that
//! task (StarPU weights by `relative_speedup`), using a seeded generator
//! for reproducible experiments.

use crate::sched::{SchedView, Scheduler};
use crate::task::TaskId;
use crate::worker::WorkerId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone)]
pub struct RandomScheduler {
    rng: SmallRng,
}

impl RandomScheduler {
    pub fn new(seed: u64) -> Self {
        RandomScheduler {
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Scheduler for RandomScheduler {
    fn name(&self) -> &'static str {
        "random"
    }

    fn choose(&mut self, task: TaskId, view: &SchedView) -> WorkerId {
        // Weight = inverse expected execution time (relative speed).
        let candidates: Vec<(WorkerId, f64)> = view
            .capable_workers(task)
            .map(|w| (w.id, 1.0 / view.exec_estimate(task, w).value().max(1e-12)))
            .collect();
        let Some(last) = candidates.last() else {
            panic!("no capable worker for task {task}");
        };
        let total: f64 = candidates.iter().map(|c| c.1).sum();
        let mut pick = self.rng.gen_range(0.0..total);
        for (id, weight) in &candidates {
            if pick < *weight {
                return *id;
            }
            pick -= weight;
        }
        // Floating-point round-off can leave `pick` a hair past the last
        // cumulative weight; the draw then belongs to the final bucket.
        last.0
    }
}
