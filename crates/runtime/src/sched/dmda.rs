//! The data-aware dequeue model (`dmda`, a.k.a. heft-tmdp-pr): like
//! [`crate::sched::DmScheduler`] but the expected completion time includes
//! the time to move missing operands to the candidate worker.

use crate::sched::{argmin_worker, SchedView, Scheduler};
use crate::task::TaskId;
use crate::worker::WorkerId;

#[derive(Debug, Default, Clone, Copy)]
pub struct DmdaScheduler;

impl Scheduler for DmdaScheduler {
    fn name(&self) -> &'static str {
        "dmda"
    }

    fn choose(&mut self, task: TaskId, view: &SchedView) -> WorkerId {
        argmin_worker(view, task, |w| {
            view.completion_estimate(task, w, true).value()
        })
    }
}
