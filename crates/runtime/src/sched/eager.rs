//! The eager (greedy FIFO) baseline: a single shared queue; each task goes
//! to whichever capable worker frees up first, with no performance model.

use crate::sched::{argmin_worker, SchedView, Scheduler};
use crate::task::TaskId;
use crate::worker::WorkerId;

#[derive(Debug, Default, Clone, Copy)]
pub struct EagerScheduler;

impl Scheduler for EagerScheduler {
    fn name(&self) -> &'static str {
        "eager"
    }

    fn choose(&mut self, task: TaskId, view: &SchedView) -> WorkerId {
        argmin_worker(view, task, |w| view.now.max(view.worker_free[w.id]).value())
    }
}
