//! The sorted data-aware dequeue model (`dmdas`) — the scheduler the paper
//! uses for all its experiments (§III-B).
//!
//! On top of dmda it (1) assigns ready tasks in decreasing application
//! priority (Chameleon's expert priorities), and (2) among workers whose
//! expected completion times are within a small factor of the best,
//! prefers the one already holding the most operand bytes — StarPU's
//! "prioritizes tasks whose data buffers are already available on the
//! target device".

use crate::sched::{SchedView, Scheduler};
use crate::task::TaskId;
use crate::worker::WorkerId;

/// Fraction of the task's own execution time within which two expected
/// completion times count as a tie for the locality preference. The
/// tolerance scales with the *task*, not the queue depth — a
/// queue-relative tolerance would let arbitrarily many tasks pile onto
/// one device late in a long run.
const TIE_FRACTION: f64 = 0.25;

#[derive(Debug, Default, Clone)]
pub struct DmdasScheduler {
    /// Reusable (worker, expected-completion) scratch — `choose` runs
    /// once per task and used to allocate a fresh Vec each call.
    costs: Vec<(WorkerId, f64)>,
}

impl Scheduler for DmdasScheduler {
    fn name(&self) -> &'static str {
        "dmdas"
    }

    fn order(&mut self, ready: &mut Vec<TaskId>, view: &SchedView) {
        // Higher priority first; stable on submission order for equals.
        ready.sort_by_key(|&t| std::cmp::Reverse(view.graph.task(t).priority));
    }

    fn choose(&mut self, task: TaskId, view: &SchedView) -> WorkerId {
        self.costs.clear();
        self.costs.extend(
            view.capable_workers(task)
                .map(|w| (w.id, view.completion_estimate(task, w, true).value())),
        );
        let costs = &self.costs;
        assert!(!costs.is_empty(), "no capable worker for task {task}");
        let (best_id, best) = costs
            .iter()
            .copied()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty candidate set");
        let slack = view.exec_estimate(task, &view.workers[best_id]).value() * TIE_FRACTION;
        // Locality tie-break among workers finishing within a fraction of
        // one execution of the best.
        costs
            .iter()
            .filter(|(_, c)| *c <= best + slack)
            .max_by(|a, b| {
                let ra = view.resident_bytes(task, &view.workers[a.0]).value();
                let rb = view.resident_bytes(task, &view.workers[b.0]).value();
                ra.total_cmp(&rb).then_with(|| b.1.total_cmp(&a.1)) // then earliest ECT
            })
            .map(|(id, _)| *id)
            .expect("non-empty candidate set")
    }
}
