//! Scheduling policies.
//!
//! The paper's experiments use **dmdas**; the rest of StarPU's family is
//! implemented for the ablation study (`repro ablation`): `eager`,
//! `random`, `dm` (HEFT-style expected completion time), `dmda` (ECT +
//! data-transfer time), `dmdas` (dmda + priority-sorted assignment +
//! locality tie-break), and the future-work `energy` scheduler.

mod dm;
mod dmda;
mod dmdas;
mod eager;
mod energy;
mod random;

pub use dm::DmScheduler;
pub use dmda::DmdaScheduler;
pub use dmdas::DmdasScheduler;
pub use eager::EagerScheduler;
pub use energy::EnergyAwareScheduler;
pub use random::RandomScheduler;

use crate::data::DataRegistry;
use crate::graph::TaskGraph;
use crate::perfmodel::PerfModel;
use crate::task::TaskId;
use crate::worker::{Worker, WorkerId};
use serde::{Deserialize, Serialize};
use ugpc_hwsim::{Joules, LinkTopology, Secs};

/// Scheduler selection, serializable for experiment configs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SchedPolicy {
    Eager,
    Random {
        seed: u64,
    },
    Dm,
    Dmda,
    Dmdas,
    /// dmdas with an energy term: cost = (1−λ)·t̂ + λ·ê (normalized).
    EnergyAware {
        lambda: f64,
    },
}

impl SchedPolicy {
    pub fn build(self) -> Box<dyn Scheduler> {
        match self {
            SchedPolicy::Eager => Box::new(EagerScheduler),
            SchedPolicy::Random { seed } => Box::new(RandomScheduler::new(seed)),
            SchedPolicy::Dm => Box::new(DmScheduler),
            SchedPolicy::Dmda => Box::new(DmdaScheduler),
            SchedPolicy::Dmdas => Box::new(DmdasScheduler::default()),
            SchedPolicy::EnergyAware { lambda } => Box::new(EnergyAwareScheduler::new(lambda)),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            SchedPolicy::Eager => "eager",
            SchedPolicy::Random { .. } => "random",
            SchedPolicy::Dm => "dm",
            SchedPolicy::Dmda => "dmda",
            SchedPolicy::Dmdas => "dmdas",
            SchedPolicy::EnergyAware { .. } => "energy",
        }
    }
}

/// Read-only view of runtime state offered to a scheduler at decision time.
pub struct SchedView<'a> {
    pub graph: &'a TaskGraph,
    pub workers: &'a [Worker],
    /// Virtual time at which each worker's queue drains.
    pub worker_free: &'a [Secs],
    pub perf: &'a PerfModel,
    pub data: &'a DataRegistry,
    pub links: &'a LinkTopology,
    pub now: Secs,
}

/// Pessimistic placeholder for uncalibrated (footprint, worker) pairs —
/// effectively excludes the worker unless nothing else can run the task.
const UNKNOWN_TIME: Secs = Secs(1e6);

impl<'a> SchedView<'a> {
    /// Can this worker execute this task at all (codelet has an
    /// implementation for the architecture)?
    pub fn can_run(&self, task: TaskId, w: &Worker) -> bool {
        let kind = self.graph.task(task).kind;
        if w.is_gpu() {
            kind.gpu_capable()
        } else {
            kind.cpu_capable()
        }
    }

    /// Expected execution time from the history model.
    pub fn exec_estimate(&self, task: TaskId, w: &Worker) -> Secs {
        let fp = self.graph.task(task).footprint();
        self.perf
            .expected_time_or_extrapolate(fp, w.id)
            .unwrap_or(UNKNOWN_TIME)
    }

    /// Expected energy of one execution on this worker.
    pub fn energy_estimate(&self, task: TaskId, w: &Worker) -> Joules {
        let fp = self.graph.task(task).footprint();
        self.perf.expected_energy(fp, w.id).unwrap_or(Joules(1e9))
    }

    /// Bandwidth-based estimate of the data-transfer time this task would
    /// incur on `w` (dmda's `transfer_model`): missing read operands moved
    /// over the worker's link, serialized.
    pub fn transfer_estimate(&self, task: TaskId, w: &Worker) -> Secs {
        let dst = w.mem_node();
        let mut total = Secs::ZERO;
        for &(d, mode) in &self.graph.task(task).data {
            if !mode.reads() {
                continue;
            }
            if let Some(src) = self.data.transfer_source(d, dst) {
                let bytes = self.data.bytes(d);
                total += match (src, dst) {
                    (crate::data::MemNode::Host, crate::data::MemNode::Gpu(_)) => {
                        self.links.h2d_time(bytes)
                    }
                    (crate::data::MemNode::Gpu(_), crate::data::MemNode::Host) => {
                        self.links.d2h_time(bytes)
                    }
                    (crate::data::MemNode::Gpu(_), crate::data::MemNode::Gpu(_)) => {
                        self.links.d2d_time(bytes)
                    }
                    (crate::data::MemNode::Host, crate::data::MemNode::Host) => Secs::ZERO,
                };
            }
        }
        total
    }

    /// Expected completion time on `w` (the dm family's objective).
    pub fn completion_estimate(&self, task: TaskId, w: &Worker, with_transfers: bool) -> Secs {
        let start = self.now.max(self.worker_free[w.id]);
        let transfer = if with_transfers {
            self.transfer_estimate(task, w)
        } else {
            Secs::ZERO
        };
        start + transfer + self.exec_estimate(task, w)
    }

    /// Bytes of this task's operands already resident on `w`'s memory node.
    pub fn resident_bytes(&self, task: TaskId, w: &Worker) -> ugpc_hwsim::Bytes {
        self.data.resident_bytes(
            self.graph.task(task).data.iter().map(|&(d, _)| d),
            w.mem_node(),
        )
    }

    /// Workers capable of running the task.
    pub fn capable_workers(&self, task: TaskId) -> impl Iterator<Item = &Worker> {
        self.workers.iter().filter(move |w| self.can_run(task, w))
    }
}

/// A scheduling policy: orders each batch of newly-ready tasks, then
/// assigns each to a worker.
pub trait Scheduler {
    fn name(&self) -> &'static str;

    /// Reorder the ready batch before assignment. Default: submission
    /// (FIFO) order.
    fn order(&mut self, _ready: &mut Vec<TaskId>, _view: &SchedView) {}

    /// Pick the worker for `task`. Must return a capable worker.
    fn choose(&mut self, task: TaskId, view: &SchedView) -> WorkerId;
}

/// Shared helper: argmin of `cost` over capable workers (first wins ties).
pub(crate) fn argmin_worker<F: FnMut(&Worker) -> f64>(
    view: &SchedView,
    task: TaskId,
    mut cost: F,
) -> WorkerId {
    view.capable_workers(task)
        .map(|w| (w.id, cost(w)))
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap_or_else(|| panic!("no capable worker for task {task}"))
        .0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names() {
        assert_eq!(SchedPolicy::Dmdas.name(), "dmdas");
        assert_eq!(SchedPolicy::Random { seed: 1 }.name(), "random");
        assert_eq!(SchedPolicy::EnergyAware { lambda: 0.5 }.name(), "energy");
    }

    #[test]
    fn policies_build() {
        for p in [
            SchedPolicy::Eager,
            SchedPolicy::Random { seed: 42 },
            SchedPolicy::Dm,
            SchedPolicy::Dmda,
            SchedPolicy::Dmdas,
            SchedPolicy::EnergyAware { lambda: 0.3 },
        ] {
            let s = p.build();
            assert_eq!(s.name(), p.name());
        }
    }
}
