//! The dequeue-model (`dm`) policy, StarPU's HEFT-style strategy (§III-B,
//! Fig. 2): assign each task to the worker with the earliest expected
//! completion time according to the calibrated performance models,
//! ignoring data-transfer costs.

use crate::sched::{argmin_worker, SchedView, Scheduler};
use crate::task::TaskId;
use crate::worker::WorkerId;

#[derive(Debug, Default, Clone, Copy)]
pub struct DmScheduler;

impl Scheduler for DmScheduler {
    fn name(&self) -> &'static str {
        "dm"
    }

    fn choose(&mut self, task: TaskId, view: &SchedView) -> WorkerId {
        argmin_worker(view, task, |w| {
            view.completion_estimate(task, w, false).value()
        })
    }
}
