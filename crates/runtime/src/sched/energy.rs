//! Energy-aware scheduling — the paper's future-work extension ("dynamic
//! scheduling algorithms optimizing energy efficiency", §VII).
//!
//! Extends dmdas with an energy term: for each candidate worker the cost is
//!
//! ```text
//! cost(w) = (1 − λ) · t̂(w)/t̂_min + λ · ê(w)/ê_min
//! ```
//!
//! where `t̂` is the dmda expected completion time and `ê` the expected
//! energy of the execution from the history model. `λ = 0` degenerates to
//! dmda; `λ = 1` always picks the most energy-frugal capable worker.

use crate::sched::{SchedView, Scheduler};
use crate::task::TaskId;
use crate::worker::WorkerId;

#[derive(Debug, Clone, Copy)]
pub struct EnergyAwareScheduler {
    lambda: f64,
}

impl EnergyAwareScheduler {
    pub fn new(lambda: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&lambda),
            "lambda must be in [0, 1], got {lambda}"
        );
        EnergyAwareScheduler { lambda }
    }

    pub fn lambda(&self) -> f64 {
        self.lambda
    }
}

impl Scheduler for EnergyAwareScheduler {
    fn name(&self) -> &'static str {
        "energy"
    }

    fn order(&mut self, ready: &mut Vec<TaskId>, view: &SchedView) {
        ready.sort_by_key(|&t| std::cmp::Reverse(view.graph.task(t).priority));
    }

    fn choose(&mut self, task: TaskId, view: &SchedView) -> WorkerId {
        let candidates: Vec<(WorkerId, f64, f64)> = view
            .capable_workers(task)
            .map(|w| {
                (
                    w.id,
                    view.completion_estimate(task, w, true).value(),
                    view.energy_estimate(task, w).value(),
                )
            })
            .collect();
        assert!(!candidates.is_empty(), "no capable worker for task {task}");
        let t_min = candidates.iter().map(|c| c.1).fold(f64::INFINITY, f64::min);
        let e_min = candidates.iter().map(|c| c.2).fold(f64::INFINITY, f64::min);
        candidates
            .iter()
            .map(|&(id, t, e)| {
                let cost =
                    (1.0 - self.lambda) * t / t_min.max(1e-12) + self.lambda * e / e_min.max(1e-12);
                (id, cost)
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(id, _)| id)
            .expect("non-empty candidate set")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_bounds_enforced() {
        let s = EnergyAwareScheduler::new(0.5);
        assert_eq!(s.lambda(), 0.5);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn invalid_lambda_panics() {
        let _ = EnergyAwareScheduler::new(1.5);
    }
}
