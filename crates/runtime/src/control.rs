//! The mid-run control-plane hook: re-cap events landing inside a live
//! execution.
//!
//! The paper's protocol is static — caps are set, the model recalibrates,
//! the run executes. The related work ("Modeling and Chasing the
//! Energy-Efficiency Sweet Spots in Modern GPUs"; "Power-Capping Metric
//! Evaluation") closes the loop *during* the run. This module is the
//! executor-side half of that loop: a [`ControlHook`] rides the run,
//! observes the same [`ExecEvent`](crate::observer::ExecEvent) stream the
//! observers see, and — unlike observers, which are read-only witnesses —
//! is **deliberately non-neutral**: at scheduled tick times it may emit
//! [`RecapEvent`]s that change device power limits while the DAG
//! executes.
//!
//! ## Event-loop contract (determinism rules)
//!
//! * Control traffic travels through the same DES [`EventQueue`]
//!   (`EventQueue<SimEvent>`) as task completions, so every decision is
//!   anchored to virtual event time — never wall clock — and the whole
//!   run stays byte-reproducible under `--jobs N` and both queue
//!   backends.
//! * Within one popped timestamp batch, re-caps apply **first**, then
//!   task completions, then control ticks. Since every later launch
//!   satisfies `t_start >= now`, a re-cap at time `t` governs exactly
//!   the kernels launched at or after `t`; kernels already committed
//!   keep the power they were launched at, with the device ledger split
//!   at the transition instant ([`ugpc_hwsim::GpuDevice::recap_at`]).
//! * Tick-only batches leave scheduler state untouched (no resync
//!   drain, no completion processing), so a **quiescent hook** — one
//!   that never requests a tick, or ticks but never re-caps — is
//!   outcome-neutral: the run is bit-identical to one without the hook
//!   (pinned by `tests/control_differential.rs`).
//! * `next_tick` must be strictly in the future; a tick at or before
//!   `now` would livelock the event loop and is discarded.
//!
//! [`EventQueue`]: crate::des::EventQueue

use crate::observer::{ExecEvent, RunContext};
use crate::task::TaskId;
use ugpc_hwsim::{Secs, Watts};

/// Payload of the executor's event queue: task completions interleaved
/// with control traffic, all ordered by `(virtual time, push order)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimEvent {
    /// A task finishes at this instant.
    Task(TaskId),
    /// A scheduled power-cap change lands on `device`.
    Recap { device: usize, cap: Watts },
    /// The control hook asked to be woken at this instant.
    ControlTick,
}

/// A power-cap change scheduled for virtual time `t` on one device.
///
/// Caps must lie within the device's `[min_cap, tdp]` window — the
/// executor applies them through
/// [`GpuDevice::recap_at`](ugpc_hwsim::GpuDevice::recap_at) and treats a
/// rejected cap as a controller bug, not a recoverable condition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecapEvent {
    pub t: Secs,
    pub device: usize,
    pub cap: Watts,
}

/// What a controller decided at one tick: zero or more re-caps (at or
/// after the tick time), plus the next wake-up.
#[derive(Debug, Clone, Default)]
pub struct ControlDecision {
    /// Cap changes to apply. A `t` at or before the tick time applies
    /// immediately (before the next scheduling round); later ones are
    /// scheduled through the event queue.
    pub recaps: Vec<RecapEvent>,
    /// Next tick time; `None` stops the loop for the rest of the run.
    /// Must be strictly after the current tick or it is discarded.
    pub next_tick: Option<Secs>,
}

impl ControlDecision {
    /// No re-caps, no further ticks.
    pub fn quiescent() -> Self {
        Self::default()
    }
}

/// The control-plane hook attached to an executor run.
///
/// `Send` because the native executor dispatches events from worker
/// threads (behind the same mutex that serializes observers).
pub trait ControlHook: Send {
    /// Called once before execution with the same context observers get.
    /// Returns the first tick time, or `None` for a hook that only
    /// listens (a quiescent hook — guaranteed outcome-neutral).
    fn on_start(&mut self, ctx: &RunContext<'_>) -> Option<Secs>;

    /// Sensor feed: every event of the run, in stream order, after the
    /// executor committed the corresponding state change.
    fn on_event(&mut self, event: &ExecEvent);

    /// A scheduled tick fired at virtual time `now`. `caps` holds the
    /// current power limit of each GPU device (empty under the native
    /// executor, which has no power model).
    fn on_tick(&mut self, now: Secs, caps: &[Watts]) -> ControlDecision;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiescent_decision_is_empty() {
        let d = ControlDecision::quiescent();
        assert!(d.recaps.is_empty());
        assert!(d.next_tick.is_none());
    }

    #[test]
    fn sim_event_is_small_and_copyable() {
        // The queue payload rides the hot path; keep it register-sized.
        assert!(std::mem::size_of::<SimEvent>() <= 24);
        let e = SimEvent::Recap {
            device: 1,
            cap: Watts(216.0),
        };
        let f = e;
        assert_eq!(e, f);
    }
}
