//! Data handles and replica tracking.
//!
//! Each tile of a matrix is registered as a data handle. During execution
//! the runtime tracks which memory nodes (host RAM, each GPU's HBM) hold a
//! valid replica — an MSI-like protocol: reads create shared replicas,
//! writes invalidate all other copies. The scheduler's transfer estimates
//! and the simulator's DMA engine both consult this state.

use serde::{Deserialize, Serialize};
use ugpc_hwsim::{Bytes, HwError, HwResult};

pub type DataId = usize;

/// A memory node of the heterogeneous platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemNode {
    Host,
    Gpu(usize),
}

impl MemNode {
    pub fn is_gpu(self) -> bool {
        matches!(self, MemNode::Gpu(_))
    }
}

/// Registry of all data handles of an application run.
#[derive(Debug, Clone, Default)]
pub struct DataRegistry {
    handles: Vec<DataState>,
}

/// Replica state of one handle.
#[derive(Debug, Clone)]
pub struct DataState {
    bytes: Bytes,
    /// Memory nodes currently holding a valid replica. Never empty.
    valid: Vec<MemNode>,
}

impl DataRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a handle whose initial valid copy lives in host memory
    /// (`starpu_matrix_data_register` on a host buffer).
    pub fn register(&mut self, bytes: Bytes) -> DataId {
        let id = self.handles.len();
        self.handles.push(DataState {
            bytes,
            valid: vec![MemNode::Host],
        });
        id
    }

    pub fn len(&self) -> usize {
        self.handles.len()
    }

    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    fn state(&self, id: DataId) -> HwResult<&DataState> {
        self.handles.get(id).ok_or(HwError::UnknownHandle {
            id,
            count: self.handles.len(),
        })
    }

    /// Size of the handle, or [`HwError::UnknownHandle`] if `id` was never
    /// registered. The linter uses this to audit graphs against foreign
    /// registries without panicking.
    pub fn try_bytes(&self, id: DataId) -> HwResult<Bytes> {
        self.state(id).map(|st| st.bytes)
    }

    /// Checked variant of [`Self::is_valid_at`].
    pub fn try_is_valid_at(&self, id: DataId, node: MemNode) -> HwResult<bool> {
        self.state(id).map(|st| st.valid.contains(&node))
    }

    /// Checked variant of [`Self::valid_nodes`].
    pub fn try_valid_nodes(&self, id: DataId) -> HwResult<&[MemNode]> {
        self.state(id).map(|st| st.valid.as_slice())
    }

    pub fn bytes(&self, id: DataId) -> Bytes {
        match self.try_bytes(id) {
            Ok(b) => b,
            Err(e) => panic!("{e}"),
        }
    }

    /// Is a valid replica present at `node`?
    pub fn is_valid_at(&self, id: DataId, node: MemNode) -> bool {
        match self.try_is_valid_at(id, node) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// All nodes holding a valid replica.
    pub fn valid_nodes(&self, id: DataId) -> &[MemNode] {
        match self.try_valid_nodes(id) {
            Ok(v) => v,
            Err(e) => panic!("{e}"),
        }
    }

    /// Pick the transfer source for a replica needed at `dst`: prefer host
    /// (cheapest single hop from any GPU's perspective and always reachable),
    /// otherwise the first GPU holder.
    ///
    /// Returns `None` when `dst` already holds a valid copy.
    pub fn transfer_source(&self, id: DataId, dst: MemNode) -> Option<MemNode> {
        let st = &self.handles[id];
        if st.valid.contains(&dst) {
            return None;
        }
        debug_assert!(!st.valid.is_empty(), "handle {id} has no valid replica");
        if st.valid.contains(&MemNode::Host) {
            Some(MemNode::Host)
        } else {
            st.valid.first().copied()
        }
    }

    /// Record that a replica has been copied to `node` (read sharing).
    pub fn add_replica(&mut self, id: DataId, node: MemNode) {
        let st = &mut self.handles[id];
        if !st.valid.contains(&node) {
            st.valid.push(node);
        }
    }

    /// Record a write at `node`: all other replicas become invalid.
    pub fn write_at(&mut self, id: DataId, node: MemNode) {
        let st = &mut self.handles[id];
        st.valid.clear();
        st.valid.push(node);
        #[cfg(feature = "sanitize")]
        debug_assert_eq!(
            self.handles[id].valid,
            vec![node],
            "write must leave exactly the writing node valid"
        );
    }

    /// Drop the replica at `node` (eviction). The handle must remain valid
    /// somewhere else — evicting a sole owner requires a writeback first.
    pub fn invalidate_at(&mut self, id: DataId, node: MemNode) {
        let st = &mut self.handles[id];
        st.valid.retain(|&n| n != node);
        assert!(
            !st.valid.is_empty(),
            "evicted the sole replica of handle {id}; write it back first"
        );
    }

    /// Is `node` the only holder of a valid replica (eviction needs a
    /// writeback)?
    pub fn is_sole_owner(&self, id: DataId, node: MemNode) -> bool {
        let st = &self.handles[id];
        st.valid.len() == 1 && st.valid[0] == node
    }

    /// Bytes of the task's operands already resident at `node` — the
    /// locality score dmdas uses to break ties.
    pub fn resident_bytes(&self, ids: impl Iterator<Item = DataId>, node: MemNode) -> Bytes {
        let mut total = Bytes::ZERO;
        for id in ids {
            if self.is_valid_at(id, node) {
                total += self.bytes(id);
            }
        }
        total
    }

    /// Assert the MSI-like coherence invariants over every handle: the
    /// valid set is never empty and holds no duplicate nodes. Only
    /// compiled under the `sanitize` feature; the simulator calls it at
    /// checkpoints.
    #[cfg(feature = "sanitize")]
    pub fn assert_coherent(&self) {
        for (id, st) in self.handles.iter().enumerate() {
            assert!(
                !st.valid.is_empty(),
                "sanitize: handle {id} has no valid replica"
            );
            for (i, a) in st.valid.iter().enumerate() {
                assert!(
                    !st.valid[i + 1..].contains(a),
                    "sanitize: handle {id} lists replica {a:?} twice"
                );
            }
            assert!(
                st.bytes.is_valid(),
                "sanitize: handle {id} has invalid byte size {:?}",
                st.bytes
            );
        }
    }

    /// Reset all handles to host-only validity (between measured runs).
    pub fn reset_to_host(&mut self) {
        for st in &mut self.handles {
            st.valid.clear();
            st.valid.push(MemNode::Host);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_starts_host_valid() {
        let mut reg = DataRegistry::new();
        let id = reg.register(Bytes(1024.0));
        assert!(reg.is_valid_at(id, MemNode::Host));
        assert!(!reg.is_valid_at(id, MemNode::Gpu(0)));
        assert_eq!(reg.bytes(id), Bytes(1024.0));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn read_sharing_keeps_all_replicas() {
        let mut reg = DataRegistry::new();
        let id = reg.register(Bytes(8.0));
        reg.add_replica(id, MemNode::Gpu(0));
        reg.add_replica(id, MemNode::Gpu(1));
        assert!(reg.is_valid_at(id, MemNode::Host));
        assert!(reg.is_valid_at(id, MemNode::Gpu(0)));
        assert!(reg.is_valid_at(id, MemNode::Gpu(1)));
        // Idempotent.
        reg.add_replica(id, MemNode::Gpu(0));
        assert_eq!(reg.valid_nodes(id).len(), 3);
    }

    #[test]
    fn write_invalidates_other_replicas() {
        let mut reg = DataRegistry::new();
        let id = reg.register(Bytes(8.0));
        reg.add_replica(id, MemNode::Gpu(0));
        reg.write_at(id, MemNode::Gpu(0));
        assert!(reg.is_valid_at(id, MemNode::Gpu(0)));
        assert!(!reg.is_valid_at(id, MemNode::Host));
        assert_eq!(reg.valid_nodes(id), &[MemNode::Gpu(0)]);
    }

    #[test]
    fn transfer_source_prefers_host() {
        let mut reg = DataRegistry::new();
        let id = reg.register(Bytes(8.0));
        reg.add_replica(id, MemNode::Gpu(0));
        // Valid at host and GPU 0; GPU 1 should fetch from host.
        assert_eq!(
            reg.transfer_source(id, MemNode::Gpu(1)),
            Some(MemNode::Host)
        );
        // Already valid at GPU 0: no transfer.
        assert_eq!(reg.transfer_source(id, MemNode::Gpu(0)), None);
        // After a GPU-exclusive write, the GPU is the only source.
        reg.write_at(id, MemNode::Gpu(0));
        assert_eq!(
            reg.transfer_source(id, MemNode::Host),
            Some(MemNode::Gpu(0))
        );
        assert_eq!(
            reg.transfer_source(id, MemNode::Gpu(1)),
            Some(MemNode::Gpu(0))
        );
    }

    #[test]
    fn resident_bytes_scores_locality() {
        let mut reg = DataRegistry::new();
        let a = reg.register(Bytes(100.0));
        let b = reg.register(Bytes(10.0));
        let c = reg.register(Bytes(1.0));
        reg.add_replica(a, MemNode::Gpu(0));
        reg.add_replica(c, MemNode::Gpu(0));
        let score = reg.resident_bytes([a, b, c].into_iter(), MemNode::Gpu(0));
        assert_eq!(score, Bytes(101.0));
        let score_host = reg.resident_bytes([a, b, c].into_iter(), MemNode::Host);
        assert_eq!(score_host, Bytes(111.0));
    }

    #[test]
    fn invalidate_drops_one_replica() {
        let mut reg = DataRegistry::new();
        let id = reg.register(Bytes(8.0));
        reg.add_replica(id, MemNode::Gpu(0));
        assert!(!reg.is_sole_owner(id, MemNode::Gpu(0)));
        reg.invalidate_at(id, MemNode::Gpu(0));
        assert!(!reg.is_valid_at(id, MemNode::Gpu(0)));
        assert!(reg.is_valid_at(id, MemNode::Host));
        assert!(reg.is_sole_owner(id, MemNode::Host));
    }

    #[test]
    #[should_panic(expected = "sole replica")]
    fn evicting_sole_owner_panics() {
        let mut reg = DataRegistry::new();
        let id = reg.register(Bytes(8.0));
        reg.write_at(id, MemNode::Gpu(1));
        reg.invalidate_at(id, MemNode::Gpu(1));
    }

    #[test]
    fn reset_to_host_restores_initial_state() {
        let mut reg = DataRegistry::new();
        let id = reg.register(Bytes(8.0));
        reg.write_at(id, MemNode::Gpu(1));
        reg.reset_to_host();
        assert_eq!(reg.valid_nodes(id), &[MemNode::Host]);
    }
}
