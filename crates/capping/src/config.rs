//! GPU power-cap configurations: strings like `HHBB` (§IV-C).
//!
//! Each GPU of a node is set to one of three states: `L` (hardware minimum
//! `P_min`), `B` (the best-efficiency cap `P_best` from the microbenchmark
//! study), or `H` (TDP, i.e. no cap). The paper found orderings within a
//! configuration interchangeable (`HHHB ≈ HBHH`), so results are presented
//! over the canonical descending form.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// One GPU's power state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CapLevel {
    /// `P_max` / TDP — the default, no effective cap.
    H,
    /// `P_best` — the best-efficiency cap from Table II.
    B,
    /// `P_min` — the lowest settable limit.
    L,
}

impl CapLevel {
    pub const ALL: [CapLevel; 3] = [CapLevel::H, CapLevel::B, CapLevel::L];

    pub fn as_char(self) -> char {
        match self {
            CapLevel::H => 'H',
            CapLevel::B => 'B',
            CapLevel::L => 'L',
        }
    }

    pub fn from_char(c: char) -> Option<Self> {
        match c.to_ascii_uppercase() {
            'H' => Some(CapLevel::H),
            'B' => Some(CapLevel::B),
            'L' => Some(CapLevel::L),
            _ => None,
        }
    }
}

/// A per-GPU assignment of cap levels, e.g. `HHBB` on a 4-GPU node.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CapConfig(Vec<CapLevel>);

/// Parse error for configuration strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadConfig(pub String);

impl fmt::Display for BadConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid cap configuration {:?} (use H/B/L)", self.0)
    }
}

impl std::error::Error for BadConfig {}

impl CapConfig {
    pub fn new(levels: Vec<CapLevel>) -> Self {
        assert!(!levels.is_empty(), "empty configuration");
        CapConfig(levels)
    }

    /// All GPUs at the same level.
    pub fn uniform(level: CapLevel, n_gpus: usize) -> Self {
        Self::new(vec![level; n_gpus])
    }

    pub fn levels(&self) -> &[CapLevel] {
        &self.0
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of GPUs at a given level.
    pub fn count(&self, level: CapLevel) -> usize {
        self.0.iter().filter(|&&l| l == level).count()
    }

    /// The default (uncapped) configuration this one is compared against.
    pub fn is_default(&self) -> bool {
        self.count(CapLevel::H) == self.len()
    }

    /// Canonical form: levels sorted H ≥ B ≥ L (the paper's presentation
    /// order; placements are interchangeable, §IV-C).
    pub fn canonical(&self) -> Self {
        let mut v = self.0.clone();
        v.sort();
        CapConfig(v)
    }

    /// Every configuration over {H, B, L}ⁿ, in lexicographic order —
    /// the paper's "comprehensive analysis of all possible configurations".
    pub fn all(n_gpus: usize) -> Vec<CapConfig> {
        let mut out = Vec::new();
        let mut cur = vec![CapLevel::H; n_gpus];
        fn rec(cur: &mut Vec<CapLevel>, pos: usize, out: &mut Vec<CapConfig>) {
            if pos == cur.len() {
                out.push(CapConfig(cur.clone()));
                return;
            }
            for l in CapLevel::ALL {
                cur[pos] = l;
                rec(cur, pos + 1, out);
            }
        }
        rec(&mut cur, 0, &mut out);
        out
    }

    /// The paper's presented set (Figs. 3/4): the ladder from all-L
    /// through mixes to all-H and down to all-B, canonical placements
    /// only. For 4 GPUs: LLLL, HLLL, HHLL, HHHL, HHHH, HHHB, HHBB, HBBB,
    /// BBBB — in that order.
    pub fn paper_ladder(n_gpus: usize) -> Vec<CapConfig> {
        let mut out = Vec::new();
        // L side: k GPUs at H, rest L, k = 0..n-1.
        for k in 0..n_gpus {
            let mut v = vec![CapLevel::H; k];
            v.extend(vec![CapLevel::L; n_gpus - k]);
            out.push(CapConfig(v));
        }
        // Default.
        out.push(CapConfig::uniform(CapLevel::H, n_gpus));
        // B side: k GPUs at H, rest B, k = n-1..0.
        for k in (0..n_gpus).rev() {
            let mut v = vec![CapLevel::H; k];
            v.extend(vec![CapLevel::B; n_gpus - k]);
            out.push(CapConfig(v));
        }
        out
    }
}

impl FromStr for CapConfig {
    type Err = BadConfig;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.is_empty() {
            return Err(BadConfig(s.to_string()));
        }
        s.chars()
            .map(|c| CapLevel::from_char(c).ok_or_else(|| BadConfig(s.to_string())))
            .collect::<Result<Vec<_>, _>>()
            .map(CapConfig)
    }
}

impl fmt::Display for CapConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for l in &self.0 {
            write!(f, "{}", l.as_char())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let c: CapConfig = "HHBB".parse().unwrap();
        assert_eq!(c.to_string(), "HHBB");
        assert_eq!(c.len(), 4);
        assert_eq!(c.count(CapLevel::H), 2);
        assert_eq!(c.count(CapLevel::B), 2);
        assert_eq!(c.count(CapLevel::L), 0);
        // Lower case accepted.
        let c2: CapConfig = "hhbb".parse().unwrap();
        assert_eq!(c, c2);
    }

    #[test]
    fn rejects_bad_strings() {
        assert!("HXBB".parse::<CapConfig>().is_err());
        assert!("".parse::<CapConfig>().is_err());
        let err = "HZ".parse::<CapConfig>().unwrap_err();
        assert!(err.to_string().contains("HZ"));
    }

    #[test]
    fn uniform_and_default() {
        let h = CapConfig::uniform(CapLevel::H, 4);
        assert_eq!(h.to_string(), "HHHH");
        assert!(h.is_default());
        let b = CapConfig::uniform(CapLevel::B, 2);
        assert!(!b.is_default());
    }

    #[test]
    fn canonical_sorts_h_first() {
        let c: CapConfig = "BHLH".parse().unwrap();
        assert_eq!(c.canonical().to_string(), "HHBL");
    }

    #[test]
    fn all_configs_count() {
        assert_eq!(CapConfig::all(1).len(), 3);
        assert_eq!(CapConfig::all(2).len(), 9);
        assert_eq!(CapConfig::all(4).len(), 81);
        // All distinct.
        let mut set = std::collections::HashSet::new();
        for c in CapConfig::all(4) {
            assert!(set.insert(c.to_string()));
        }
    }

    #[test]
    fn paper_ladder_four_gpus() {
        let ladder: Vec<String> = CapConfig::paper_ladder(4)
            .iter()
            .map(|c| c.to_string())
            .collect();
        assert_eq!(
            ladder,
            vec!["LLLL", "HLLL", "HHLL", "HHHL", "HHHH", "HHHB", "HHBB", "HBBB", "BBBB"]
        );
    }

    #[test]
    fn paper_ladder_two_gpus() {
        let ladder: Vec<String> = CapConfig::paper_ladder(2)
            .iter()
            .map(|c| c.to_string())
            .collect();
        assert_eq!(ladder, vec!["LL", "HL", "HH", "HB", "BB"]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_config_panics() {
        let _ = CapConfig::new(vec![]);
    }
}
