//! Applying cap configurations to a node — through the NVML façade for
//! GPUs (as the paper's tooling does) and through RAPL for CPU packages.

use crate::config::{CapConfig, CapLevel};
use ugpc_hwsim::{HwError, HwResult, Node, Nvml, OpKind, Precision, Watts};

/// Resolve a configuration's levels into watt values for a node, using the
/// Table II power states for the given operation/precision.
pub fn resolve_caps(
    node: &Node,
    config: &CapConfig,
    op: OpKind,
    precision: Precision,
) -> HwResult<Vec<Watts>> {
    if config.len() != node.gpus().len() {
        return Err(HwError::InvalidDeviceIndex {
            index: config.len(),
            count: node.gpus().len(),
        });
    }
    let (l, b, h) = node.gpu_power_states(op, precision);
    Ok(config
        .levels()
        .iter()
        .map(|lev| match lev {
            CapLevel::L => l,
            CapLevel::B => b,
            CapLevel::H => h,
        })
        .collect())
}

/// Apply a GPU cap configuration through NVML (`nvmlDeviceSetPowerManagementLimit`
/// per device, in milliwatts — exactly the paper's procedure).
pub fn apply_gpu_caps(
    node: &mut Node,
    config: &CapConfig,
    op: OpKind,
    precision: Precision,
) -> HwResult<()> {
    let caps = resolve_caps(node, config, op, precision)?;
    let mut nvml = Nvml::new(node.gpus_mut());
    for (i, cap) in caps.iter().enumerate() {
        nvml.set_power_management_limit(i, cap.as_milliwatts())?;
    }
    Ok(())
}

/// Apply the paper's CPU cap (§V-C): one package limited to `cap`, the
/// rest untouched. Fails on packages without RAPL capping (AMD) or below
/// the stability floor.
pub fn apply_cpu_cap(node: &mut Node, package: usize, cap: Watts) -> HwResult<()> {
    let n = node.cpus().len();
    node.cpus_mut()
        .get_mut(package)
        .ok_or(HwError::InvalidDeviceIndex {
            index: package,
            count: n,
        })?
        .set_power_limit(cap)
}

/// Reset all power limits (GPU and CPU) to defaults.
pub fn reset_all_caps(node: &mut Node) {
    node.reset_power_limits();
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugpc_hwsim::PlatformId;

    #[test]
    fn resolve_maps_levels_to_watts() {
        let node = Node::new(PlatformId::Amd4A100);
        let cfg: CapConfig = "HHBL".parse().unwrap();
        let caps = resolve_caps(&node, &cfg, OpKind::Gemm, Precision::Double).unwrap();
        assert_eq!(caps[0], Watts(400.0));
        assert_eq!(caps[1], Watts(400.0));
        assert!((caps[2].value() - 216.0).abs() < 1e-9);
        assert_eq!(caps[3], Watts(100.0));
    }

    #[test]
    fn resolve_rejects_wrong_length() {
        let node = Node::new(PlatformId::Amd4A100);
        let cfg: CapConfig = "HH".parse().unwrap();
        assert!(resolve_caps(&node, &cfg, OpKind::Gemm, Precision::Double).is_err());
    }

    #[test]
    fn apply_sets_device_limits() {
        let mut node = Node::new(PlatformId::Amd4A100);
        let cfg: CapConfig = "BBLH".parse().unwrap();
        apply_gpu_caps(&mut node, &cfg, OpKind::Gemm, Precision::Single).unwrap();
        // Single-precision GEMM: B = 40 % of 400 W = 160 W.
        assert!((node.gpu(0).power_limit().value() - 160.0).abs() < 1e-9);
        assert!((node.gpu(1).power_limit().value() - 160.0).abs() < 1e-9);
        assert_eq!(node.gpu(2).power_limit(), Watts(100.0));
        assert_eq!(node.gpu(3).power_limit(), Watts(400.0));
    }

    #[test]
    fn potrf_levels_differ_from_gemm() {
        let mut node = Node::new(PlatformId::Amd4A100);
        let cfg = CapConfig::uniform(CapLevel::B, 4);
        apply_gpu_caps(&mut node, &cfg, OpKind::Potrf, Precision::Double).unwrap();
        // Table II: POTRF dp best cap is 52 % of 400 W = 208 W.
        assert!((node.gpu(0).power_limit().value() - 208.0).abs() < 1e-9);
    }

    #[test]
    fn cpu_cap_intel_only() {
        let mut intel = Node::new(PlatformId::Intel2V100);
        // The paper's setting: second package at 60 W.
        apply_cpu_cap(&mut intel, 1, Watts(60.0)).unwrap();
        assert_eq!(intel.cpus()[1].power_limit(), Some(Watts(60.0)));
        assert_eq!(intel.cpus()[0].power_limit(), None);

        let mut amd = Node::new(PlatformId::Amd2A100);
        assert!(matches!(
            apply_cpu_cap(&mut amd, 0, Watts(100.0)),
            Err(HwError::NotSupported(_))
        ));
    }

    #[test]
    fn cpu_cap_bad_package_index() {
        let mut node = Node::new(PlatformId::Intel2V100);
        assert!(apply_cpu_cap(&mut node, 5, Watts(60.0)).is_err());
    }

    #[test]
    fn reset_restores_defaults() {
        let mut node = Node::new(PlatformId::Intel2V100);
        apply_gpu_caps(
            &mut node,
            &CapConfig::uniform(CapLevel::L, 2),
            OpKind::Gemm,
            Precision::Double,
        )
        .unwrap();
        apply_cpu_cap(&mut node, 1, Watts(60.0)).unwrap();
        reset_all_caps(&mut node);
        assert_eq!(node.gpu(0).power_limit(), Watts(250.0));
        assert_eq!(node.cpus()[1].power_limit(), None);
    }
}
