//! Power-cap sweeps of a single GEMM kernel on one GPU — the paper's
//! motivation study (§II, Fig. 1 and Table I).
//!
//! The cap is varied from the device minimum to TDP (the paper steps by
//! 2 % of TDP); at each point a single large-tile cuBLAS-like GEMM runs
//! and we record time, average power, energy and efficiency.

use serde::{Deserialize, Serialize};
use ugpc_hwsim::{run_kernel, GpuModel, GpuSpec, Joules, KernelWork, Precision, Secs, Watts};

/// One point of a cap sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    pub cap: Watts,
    /// Cap as a fraction of TDP.
    pub cap_frac: f64,
    pub time: Secs,
    pub power: Watts,
    pub energy: Joules,
    /// Achieved rate in Gflop/s.
    pub gflops: f64,
    /// Energy efficiency in Gflop/s/W.
    pub efficiency: f64,
}

/// The cap fractions a sweep visits: the device minimum stepped by
/// `step_frac` of TDP up to (and including) 1.0. Exposed separately from
/// [`cap_sweep`] so a parallel driver can fan the individual
/// [`sweep_point`] simulations across workers; the accumulation matches
/// the serial sweep bit-for-bit (clamping happens in `sweep_point`, as
/// it did in the original loop).
pub fn cap_fracs(model: GpuModel, step_frac: f64) -> Vec<f64> {
    assert!(step_frac > 0.0 && step_frac < 1.0);
    let spec = GpuSpec::of(model);
    let mut out = Vec::new();
    let mut frac = spec.min_cap / spec.tdp;
    loop {
        out.push(frac);
        if frac >= 1.0 {
            break;
        }
        frac += step_frac;
    }
    out
}

/// One independent simulation of the sweep: a single large-tile GEMM at
/// cap fraction `frac` (clamped to TDP). Pure — the sweep's unit of
/// parallel work.
pub fn sweep_point(model: GpuModel, nb: usize, precision: Precision, frac: f64) -> SweepPoint {
    let spec = GpuSpec::of(model);
    let work = KernelWork::gemm_tile(nb, precision);
    let cap = spec.tdp * frac.min(1.0);
    let run = run_kernel(&spec, &work, cap);
    let energy = run.energy();
    SweepPoint {
        cap,
        cap_frac: frac.min(1.0),
        time: run.time,
        power: run.power,
        energy,
        gflops: (work.flops / run.time).as_gflops(),
        efficiency: work.flops.value() / energy.value() / 1e9,
    }
}

/// Sweep the power cap for a square GEMM of tile dimension `nb` on one
/// GPU model. `step_frac` is the cap step as a fraction of TDP (the paper
/// uses 0.02).
pub fn cap_sweep(
    model: GpuModel,
    nb: usize,
    precision: Precision,
    step_frac: f64,
) -> Vec<SweepPoint> {
    cap_fracs(model, step_frac)
        .into_iter()
        .map(|frac| sweep_point(model, nb, precision, frac))
        .collect()
}

/// Checked variant of [`best_point`]: `None` on an empty sweep.
pub fn try_best_point(sweep: &[SweepPoint]) -> Option<&SweepPoint> {
    sweep
        .iter()
        .max_by(|a, b| a.efficiency.total_cmp(&b.efficiency))
}

/// The sweep point with the best energy efficiency.
pub fn best_point(sweep: &[SweepPoint]) -> &SweepPoint {
    match try_best_point(sweep) {
        Some(p) => p,
        None => panic!("empty sweep"),
    }
}

/// One row of the paper's Table I, re-derived by sweeping.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableIRow {
    pub gpu: String,
    pub precision: Precision,
    /// Matrix size with the best overall efficiency.
    pub matrix_size: usize,
    /// Best cap in % of TDP.
    pub power_cap_pct: f64,
    /// Efficiency saving vs. the uncapped run at the same size, in %.
    pub eff_saving_pct: f64,
}

/// Re-derive a Table I row: sweep all matrix sizes, find the global
/// efficiency optimum and its saving vs. uncapped.
pub fn table_i_row(model: GpuModel, precision: Precision, sizes: &[usize]) -> TableIRow {
    let mut best: Option<(usize, SweepPoint, f64)> = None;
    for &nb in sizes {
        let sweep = cap_sweep(model, nb, precision, 0.02);
        let uncapped = sweep.last().expect("non-empty sweep");
        let p = best_point(&sweep);
        let saving = (p.efficiency / uncapped.efficiency - 1.0) * 100.0;
        if best
            .as_ref()
            .is_none_or(|(_, b, _)| p.efficiency > b.efficiency)
        {
            best = Some((nb, *p, saving));
        }
    }
    let (nb, p, saving) = best.expect("no sizes given");
    TableIRow {
        gpu: model.name().to_string(),
        precision,
        matrix_size: nb,
        power_cap_pct: p.cap_frac * 100.0,
        eff_saving_pct: saving,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_min_to_tdp() {
        let sweep = cap_sweep(GpuModel::A100Sxm4_40, 5120, Precision::Double, 0.02);
        let first = sweep.first().unwrap();
        let last = sweep.last().unwrap();
        assert!((first.cap.value() - 100.0).abs() < 9.0, "{first:?}");
        assert_eq!(last.cap, Watts(400.0));
        assert!(sweep.len() > 30);
    }

    #[test]
    fn efficiency_peaks_below_tdp_for_large_gemm() {
        // Fig. 1's headline observation.
        let sweep = cap_sweep(GpuModel::A100Sxm4_40, 5120, Precision::Double, 0.02);
        let best = best_point(&sweep);
        let uncapped = sweep.last().unwrap();
        assert!(best.cap < uncapped.cap);
        assert!(best.efficiency > uncapped.efficiency * 1.15);
        // Best cap near 54 % of TDP (Table I ±4 pp).
        assert!(
            (best.cap_frac - 0.54).abs() < 0.05,
            "best cap at {:.1} %",
            best.cap_frac * 100.0
        );
    }

    #[test]
    fn performance_monotone_in_cap() {
        let sweep = cap_sweep(GpuModel::V100Pcie32, 5120, Precision::Single, 0.02);
        for w in sweep.windows(2) {
            assert!(
                w[1].gflops >= w[0].gflops - 1e-9,
                "perf dropped when raising cap: {w:?}"
            );
        }
    }

    #[test]
    fn small_matrices_less_efficient_and_flatter() {
        let big = cap_sweep(GpuModel::A100Sxm4_40, 5120, Precision::Double, 0.02);
        let small = cap_sweep(GpuModel::A100Sxm4_40, 1024, Precision::Double, 0.02);
        assert!(best_point(&big).efficiency > best_point(&small).efficiency);
        // Small kernels don't reach the cap at moderate levels: their
        // performance at 70 % TDP equals uncapped.
        let at70 = small.iter().find(|p| p.cap_frac >= 0.70).unwrap();
        let free = small.last().unwrap();
        assert!((at70.gflops - free.gflops).abs() / free.gflops < 0.02);
    }

    #[test]
    fn table_i_rows_match_paper() {
        // Re-derive all six Table I rows and compare the optima.
        let cases = [
            (GpuModel::A100Sxm4_40, Precision::Double, 54.0, 28.81),
            (GpuModel::A100Sxm4_40, Precision::Single, 40.0, 27.76),
            (GpuModel::A100Pcie40, Precision::Double, 78.0, 10.92),
            (GpuModel::A100Pcie40, Precision::Single, 60.0, 23.17),
            (GpuModel::V100Pcie32, Precision::Double, 60.0, 18.52),
            (GpuModel::V100Pcie32, Precision::Single, 58.0, 20.74),
        ];
        for (model, prec, cap_pct, saving_pct) in cases {
            let row = table_i_row(model, prec, &[2048, 4096, 5120, 5760]);
            assert!(
                (row.power_cap_pct - cap_pct).abs() <= 6.0,
                "{model} {prec}: cap {:.1} vs paper {cap_pct}",
                row.power_cap_pct
            );
            assert!(
                (row.eff_saving_pct - saving_pct).abs() <= 6.0,
                "{model} {prec}: saving {:.1} vs paper {saving_pct}",
                row.eff_saving_pct
            );
            // Largest size wins, as in the paper.
            assert_eq!(row.matrix_size, 5760, "{model} {prec}");
        }
    }

    #[test]
    fn energy_equals_power_times_time() {
        let sweep = cap_sweep(GpuModel::A100Pcie40, 2880, Precision::Single, 0.05);
        for p in &sweep {
            assert!((p.energy.value() - p.power.value() * p.time.value()).abs() < 1e-9);
        }
    }
}
