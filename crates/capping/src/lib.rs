//! # ugpc-capping — power-capping policies
//!
//! The paper's experimental lever: per-GPU cap levels `L`/`B`/`H`
//! ([`config`]), applied through the NVML/RAPL façades ([`policy`]);
//! single-kernel cap sweeps for the motivation study ([`sweep`], Fig. 1 /
//! Table I); and a DEPO-like online controller from the paper's
//! future-work list ([`dynamic`]).

pub mod config;
pub mod dynamic;
pub mod policy;
pub mod sweep;

pub use config::{BadConfig, CapConfig, CapLevel};
pub use dynamic::{run_dynamic, DynamicCapper, DynamicRun, ObjectiveValue};
pub use policy::{apply_cpu_cap, apply_gpu_caps, reset_all_caps, resolve_caps};
pub use sweep::{
    best_point, cap_fracs, cap_sweep, sweep_point, table_i_row, try_best_point, SweepPoint,
    TableIRow,
};
