//! Dynamic power capping — the paper's future-work extension (§VII),
//! modeled on the DEPO tool it cites (refs. 24 and 25 in the paper).
//!
//! An online hill-climbing controller for iterative workloads: each epoch
//! it measures the achieved energy efficiency at the current cap, then
//! moves the cap in the improving direction, reversing and halving the
//! step when efficiency drops. On the voltage-floor hardware model this
//! converges to the knee — i.e. it *discovers* `P_best` online, without
//! the offline sweep of Table II.

use serde::{Deserialize, Serialize};
use ugpc_hwsim::{GpuDevice, KernelWork, Secs, Watts};

/// Hill-climbing controller state for one GPU.
#[derive(Debug, Clone)]
pub struct DynamicCapper {
    cap: Watts,
    step: Watts,
    min_step: Watts,
    /// +1 or −1: current search direction.
    direction: f64,
    last_eff: Option<f64>,
    min: Watts,
    max: Watts,
}

impl DynamicCapper {
    /// Start at the device's current limit with a step of 10 % of the cap
    /// range.
    pub fn new(gpu: &GpuDevice) -> Self {
        let min = gpu.spec().min_cap;
        let max = gpu.spec().tdp;
        let step = (max - min) * 0.10;
        DynamicCapper {
            cap: gpu.power_limit(),
            step,
            min_step: step * 0.05,
            direction: -1.0, // start by lowering: that is where savings live
            last_eff: None,
            min,
            max,
        }
    }

    pub fn cap(&self) -> Watts {
        self.cap
    }

    /// Has the search effectively converged (step exhausted)?
    pub fn converged(&self) -> bool {
        self.step <= self.min_step
    }

    /// Feed the efficiency measured over the last epoch; returns the cap
    /// to apply for the next epoch.
    pub fn observe(&mut self, efficiency: f64) -> Watts {
        if let Some(prev) = self.last_eff {
            if efficiency < prev {
                // Overshot: reverse and refine.
                self.direction = -self.direction;
                self.step = (self.step * 0.5).max(self.min_step);
            }
        }
        self.last_eff = Some(efficiency);
        self.cap = (self.cap + self.step * self.direction).clamp(self.min, self.max);
        self.cap
    }
}

/// History of one dynamic-capping run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicRun {
    /// Per-epoch (cap, efficiency in Gflop/s/W).
    pub history: Vec<(Watts, f64)>,
    pub final_cap: Watts,
    pub final_efficiency: f64,
}

/// Drive an iterative workload (repeated identical kernels, DEPO's target
/// shape) on one GPU under the controller for `epochs` epochs of
/// `iters_per_epoch` kernels each.
pub fn run_dynamic(
    gpu: &mut GpuDevice,
    work: &KernelWork,
    epochs: usize,
    iters_per_epoch: usize,
) -> DynamicRun {
    assert!(epochs > 0 && iters_per_epoch > 0);
    let mut ctl = DynamicCapper::new(gpu);
    let mut history = Vec::with_capacity(epochs);
    let mut now = gpu.last_end();
    for _ in 0..epochs {
        let cap = ctl.cap();
        let e0 = gpu.energy(now);
        let t0 = now;
        for _ in 0..iters_per_epoch {
            let run = gpu.execute(work, now);
            now += run.time;
        }
        let energy = gpu.energy(now) - e0;
        let flops = work.flops.value() * iters_per_epoch as f64;
        let _epoch_time: Secs = now - t0;
        let eff = flops / energy.value() / 1e9;
        history.push((cap, eff));
        let next = ctl.observe(eff);
        // Apply through the device's constraint-checked setter.
        gpu.set_power_limit(next)
            .expect("controller stayed in range");
    }
    let (final_cap, final_efficiency) = *history.last().expect("epochs > 0");
    DynamicRun {
        history,
        final_cap,
        final_efficiency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugpc_hwsim::{GpuModel, Precision};

    #[test]
    fn controller_lowers_cap_first() {
        let gpu = GpuDevice::new(0, GpuModel::A100Sxm4_40);
        let mut ctl = DynamicCapper::new(&gpu);
        let next = ctl.observe(40.0);
        assert!(next < Watts(400.0));
    }

    #[test]
    fn reverses_on_efficiency_drop() {
        let gpu = GpuDevice::new(0, GpuModel::A100Sxm4_40);
        let mut ctl = DynamicCapper::new(&gpu);
        let c1 = ctl.observe(40.0);
        let c2 = ctl.observe(45.0); // improving: keep going down
        assert!(c2 < c1);
        let c3 = ctl.observe(30.0); // worse: reverse
        assert!(c3 > c2);
    }

    #[test]
    fn stays_within_constraints() {
        let gpu = GpuDevice::new(0, GpuModel::A100Sxm4_40);
        let mut ctl = DynamicCapper::new(&gpu);
        // Relentlessly "improving" while lowering: must clamp at min cap.
        let mut eff = 10.0;
        let mut cap = Watts(400.0);
        for _ in 0..100 {
            eff += 1.0;
            cap = ctl.observe(eff);
            assert!(cap >= gpu.spec().min_cap && cap <= gpu.spec().tdp);
        }
        assert_eq!(cap, gpu.spec().min_cap);
    }

    #[test]
    fn discovers_best_cap_online() {
        // The headline property: starting from TDP, the controller
        // converges near the knee (P_best ≈ 54 % TDP for dp GEMM) without
        // any offline profiling.
        let mut gpu = GpuDevice::new(0, GpuModel::A100Sxm4_40);
        let work = KernelWork::gemm_tile(5760, Precision::Double);
        let run = run_dynamic(&mut gpu, &work, 40, 3);
        let frac = run.final_cap.value() / 400.0;
        assert!(
            (0.44..=0.66).contains(&frac),
            "converged to {:.0} % TDP",
            frac * 100.0
        );
        // Final efficiency beats the uncapped first epoch by a wide margin.
        let first_eff = run.history[0].1;
        assert!(
            run.final_efficiency > first_eff * 1.15,
            "{} vs {first_eff}",
            run.final_efficiency
        );
    }

    #[test]
    fn history_has_one_entry_per_epoch() {
        let mut gpu = GpuDevice::new(0, GpuModel::V100Pcie32);
        let work = KernelWork::gemm_tile(2880, Precision::Single);
        let run = run_dynamic(&mut gpu, &work, 10, 2);
        assert_eq!(run.history.len(), 10);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use ugpc_hwsim::GpuModel;

    /// (gpu, start-cap) pairs across every modeled device and any legal
    /// starting power limit.
    fn arb_capper() -> impl Strategy<Value = DynamicCapper> {
        (0..GpuModel::ALL.len(), 0.0..1.0f64).prop_map(|(m, start)| {
            let mut gpu = GpuDevice::new(0, GpuModel::ALL[m]);
            let (min, max) = (gpu.spec().min_cap, gpu.spec().tdp);
            gpu.set_power_limit(Watts(min.value() + start * (max - min).value()))
                .expect("start cap within [min_cap, tdp]");
            DynamicCapper::new(&gpu)
        })
    }

    proptest! {
        /// Whatever efficiency sequence the workload produces — noisy,
        /// adversarial, constant — every cap the controller emits stays
        /// inside the device's [min_cap, tdp] window.
        #[test]
        fn caps_never_leave_device_range(
            case in (arb_capper(), proptest::collection::vec(0.0..200.0f64, 1..60)),
        ) {
            let (mut ctl, effs) = case;
            let (min, max) = (ctl.min, ctl.max);
            for eff in effs {
                let cap = ctl.observe(eff);
                prop_assert!(cap >= min && cap <= max, "cap {cap} outside [{min}, {max}]");
                prop_assert_eq!(cap, ctl.cap());
            }
        }

        /// On any unimodal efficiency curve with an interior peak the
        /// hill-climber converges (step exhausted) within a bounded number
        /// of observations. The bound is generous but finite: the initial
        /// step is 10 % of the cap range and needs 5 halvings to shrink
        /// below min_step; each leg between reversals crosses at most the
        /// whole range (≤ 10 steps), so 200 epochs is ample headroom.
        #[test]
        fn converges_on_unimodal_curves(
            ctl in arb_capper(),
            peak_frac in 0.15..0.85f64,
            sharpness in 0.5..8.0f64,
        ) {
            let mut ctl = ctl;
            let (min, max) = (ctl.min, ctl.max);
            let range = (max - min).value();
            let peak = min.value() + peak_frac * range;
            // Strictly concave, maximum at `peak`, strictly decreasing
            // away from it — the DEPO iterative-workload shape.
            let eff = |cap: Watts| {
                let d = (cap.value() - peak) / range;
                100.0 - sharpness * d * d * 100.0
            };
            let mut observations = 0usize;
            while !ctl.converged() {
                observations += 1;
                prop_assert!(
                    observations <= 200,
                    "no convergence after 200 epochs (peak {peak:.0} W, cap {})",
                    ctl.cap()
                );
                let cap = ctl.cap();
                ctl.observe(eff(cap));
            }
            // Converged means the search landed near the peak: within the
            // travel still reachable by the remaining (exhausted) step
            // budget. min_step is 0.5 % of the range; the final resting
            // point sits within a few final-leg steps of the peak.
            let err = (ctl.cap().value() - peak).abs() / range;
            prop_assert!(
                err <= 0.20,
                "converged {:.1} % of range away from the peak",
                err * 100.0
            );
        }
    }
}
