//! Dynamic power capping — the paper's future-work extension (§VII),
//! modeled on the DEPO tool it cites (refs. 24 and 25 in the paper).
//!
//! This module is now a **facade**: the hill-climbing controller lives
//! canonically in [`ugpc_control::capper`] (where it drives the online
//! mid-run control plane) and is re-exported here unchanged, so existing
//! `ugpc_capping::DynamicCapper` users keep working. The one visible
//! change from the move: [`DynamicCapper::observe`] takes a typed
//! [`ObjectiveValue`] instead of a raw `f64`, making the metric being
//! climbed explicit at every call site.
//!
//! [`run_dynamic`] — the standalone single-GPU epoch loop for iterative
//! workloads (DEPO's target shape) — still lives here: it is a *capping
//! study* driver, not part of the control plane.

use serde::{Deserialize, Serialize};
use ugpc_hwsim::{GpuDevice, KernelWork, Secs, Watts};

pub use ugpc_control::{DynamicCapper, ObjectiveValue};

/// History of one dynamic-capping run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicRun {
    /// Per-epoch (cap, efficiency in Gflop/s/W).
    pub history: Vec<(Watts, f64)>,
    pub final_cap: Watts,
    pub final_efficiency: f64,
}

/// Drive an iterative workload (repeated identical kernels, DEPO's target
/// shape) on one GPU under the controller for `epochs` epochs of
/// `iters_per_epoch` kernels each.
pub fn run_dynamic(
    gpu: &mut GpuDevice,
    work: &KernelWork,
    epochs: usize,
    iters_per_epoch: usize,
) -> DynamicRun {
    assert!(epochs > 0 && iters_per_epoch > 0);
    let mut ctl = DynamicCapper::new(gpu);
    let mut history = Vec::with_capacity(epochs);
    let mut now = gpu.last_end();
    for _ in 0..epochs {
        let cap = ctl.cap();
        let e0 = gpu.energy(now);
        let t0 = now;
        for _ in 0..iters_per_epoch {
            let run = gpu.execute(work, now);
            now += run.time;
        }
        let energy = gpu.energy(now) - e0;
        let flops = work.flops.value() * iters_per_epoch as f64;
        let _epoch_time: Secs = now - t0;
        let eff = flops / energy.value() / 1e9;
        history.push((cap, eff));
        let next = ctl.observe(ObjectiveValue(eff));
        // Apply through the device's constraint-checked setter.
        gpu.set_power_limit(next)
            .expect("controller stayed in range");
    }
    let (final_cap, final_efficiency) = *history.last().expect("epochs > 0");
    DynamicRun {
        history,
        final_cap,
        final_efficiency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ugpc_hwsim::{GpuModel, Precision};

    // The controller's own unit tests and proptests (range safety,
    // reversal behavior, unimodal convergence) live with the canonical
    // implementation in `ugpc-control`. These tests cover the facade:
    // the re-export drives a real device study end to end.

    #[test]
    fn facade_capper_is_the_canonical_one() {
        let gpu = GpuDevice::new(0, GpuModel::A100Sxm4_40);
        let ctl = DynamicCapper::new(&gpu);
        let canonical: ugpc_control::DynamicCapper = ctl;
        assert_eq!(canonical.cap(), Watts(400.0));
        assert_eq!(canonical.min(), gpu.spec().min_cap);
        assert_eq!(canonical.max(), gpu.spec().tdp);
    }

    #[test]
    fn discovers_best_cap_online() {
        // The headline property: starting from TDP, the controller
        // converges near the knee (P_best ≈ 54 % TDP for dp GEMM) without
        // any offline profiling.
        let mut gpu = GpuDevice::new(0, GpuModel::A100Sxm4_40);
        let work = KernelWork::gemm_tile(5760, Precision::Double);
        let run = run_dynamic(&mut gpu, &work, 40, 3);
        let frac = run.final_cap.value() / 400.0;
        assert!(
            (0.44..=0.66).contains(&frac),
            "converged to {:.0} % TDP",
            frac * 100.0
        );
        // Final efficiency beats the uncapped first epoch by a wide margin.
        let first_eff = run.history[0].1;
        assert!(
            run.final_efficiency > first_eff * 1.15,
            "{} vs {first_eff}",
            run.final_efficiency
        );
    }

    #[test]
    fn history_has_one_entry_per_epoch() {
        let mut gpu = GpuDevice::new(0, GpuModel::V100Pcie32);
        let work = KernelWork::gemm_tile(2880, Precision::Single);
        let run = run_dynamic(&mut gpu, &work, 10, 2);
        assert_eq!(run.history.len(), 10);
    }
}
