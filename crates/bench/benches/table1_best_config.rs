//! Bench for Table I: re-deriving the best-efficiency configuration per
//! GPU model and precision by full sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ugpc_capping::table_i_row;
use ugpc_hwsim::{GpuModel, Precision};

const SIZES: [usize; 4] = [2048, 4096, 5120, 5760];

fn print_regenerated_rows() {
    println!("\n=== Table I (regenerated) ===");
    for model in GpuModel::ALL {
        for precision in Precision::ALL {
            let row = table_i_row(model, precision, &SIZES);
            let paper = model.efficiency_target(precision);
            println!(
                "{:<16} {:<6} n={} cap {:.0} %TDP (paper {:.0}), saving {:+.2} % (paper {:+.2})",
                row.gpu,
                precision.short(),
                row.matrix_size,
                row.power_cap_pct,
                paper.best_cap_frac * 100.0,
                row.eff_saving_pct,
                paper.gain * 100.0,
            );
        }
    }
}

fn bench(c: &mut Criterion) {
    print_regenerated_rows();
    let mut group = c.benchmark_group("table1_best_config");
    for model in GpuModel::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(model.name()),
            &model,
            |b, &m| b.iter(|| black_box(table_i_row(m, Precision::Double, &SIZES))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
