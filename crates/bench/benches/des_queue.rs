//! Head-to-head of the DES event-queue backends: the binary heap
//! (reference) against the calendar queue (default). Three loads:
//!
//! * `hold`: the classic hold model — steady-state pop-then-push at a
//!   fixed population, the regime a running simulation lives in;
//! * `drain`: bulk load then drain to empty (end-of-run tail);
//! * `simulate`: the whole virtual-time executor on the paper's POTRF,
//!   where the queue is one cost among many — the end-to-end win the
//!   calendar default actually buys.
//!
//! The differential suites prove the backends byte-identical, so these
//! numbers are pure speed; `BENCH_des_queue.json` is the committed
//! evidence for making the calendar the default.

// Bench setup code may unwrap, same as tests (the workspace denies
// unwrap_used in library code only).
#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use ugpc_hwsim::{Node, PlatformId, Precision, Secs};
use ugpc_linalg::build_potrf;
use ugpc_runtime::{simulate, DataRegistry, EventQueue, QueueBackend, SimOptions};

const BACKENDS: [QueueBackend; 2] = [QueueBackend::Heap, QueueBackend::Calendar];

/// Deterministic pseudo-random event times: LCG over a [0, 16) window
/// advancing with virtual time, the skewed short-horizon distribution a
/// DES produces (most events land near `now`).
struct TimeGen {
    state: u64,
    now: f64,
}

impl TimeGen {
    fn new(seed: u64) -> Self {
        TimeGen {
            state: seed.wrapping_mul(6364136223846793005).wrapping_add(1),
            now: 0.0,
        }
    }

    fn next_at(&mut self) -> f64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (self.state >> 11) as f64 / (1u64 << 53) as f64;
        self.now + u * u * 16.0
    }
}

fn hold(c: &mut Criterion) {
    let mut group = c.benchmark_group("hold");
    group.sample_size(20);
    for &n in &[1024usize, 65536] {
        // One hold operation = pop the minimum, push a fresh event at a
        // later time; throughput is queue ops (2 per hold).
        group.throughput(Throughput::Elements(2 * n as u64));
        for backend in BACKENDS {
            group.bench_with_input(BenchmarkId::new(backend.to_string(), n), &n, |b, &n| {
                let mut queue = EventQueue::<usize>::unmonitored(backend);
                let mut times = TimeGen::new(7);
                for i in 0..n {
                    queue.push(Secs(times.next_at()), i);
                }
                b.iter(|| {
                    for _ in 0..n {
                        let (now, id) = queue.pop().unwrap();
                        times.now = now.value();
                        queue.push(Secs(times.next_at()), id);
                    }
                    black_box(queue.len())
                })
            });
        }
    }
    group.finish();
}

fn drain(c: &mut Criterion) {
    let mut group = c.benchmark_group("drain");
    group.sample_size(20);
    let n = 65536usize;
    group.throughput(Throughput::Elements(2 * n as u64));
    for backend in BACKENDS {
        group.bench_with_input(BenchmarkId::new(backend.to_string(), n), &n, |b, &n| {
            let mut queue = EventQueue::<usize>::unmonitored(backend);
            b.iter(|| {
                let mut times = TimeGen::new(42);
                for i in 0..n {
                    queue.push(Secs(times.next_at()), i);
                }
                let mut last = f64::NEG_INFINITY;
                while let Some((t, _)) = queue.pop() {
                    last = t.value();
                }
                black_box(last)
            })
        });
    }
    group.finish();
}

fn simulate_potrf(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    group.sample_size(10);
    // The paper's POTRF at nt=20 is 1540 tasks; throughput in tasks.
    group.throughput(Throughput::Elements(1540));
    for backend in BACKENDS {
        group.bench_function(BenchmarkId::new(backend.to_string(), "potrf_nt20"), |b| {
            let options = SimOptions {
                queue: backend,
                ..SimOptions::default()
            };
            b.iter(|| {
                let mut node = Node::new(PlatformId::Amd4A100);
                let mut reg = DataRegistry::new();
                let op = build_potrf(20, 2880, Precision::Double, &mut reg);
                let trace = simulate(&mut node, &op.graph, &mut reg, options);
                black_box(trace.makespan)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, hold, drain, simulate_potrf);
criterion_main!(benches);
