//! Bench for Table II: resolving the experiment constants and
//! re-deriving each `P_best` by a sweep at the operation's tile size.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ugpc_experiments::table2;

fn bench(c: &mut Criterion) {
    let t = table2::run();
    println!("\n{}", table2::render(&t));
    c.bench_function("table2_states/rederive_all_rows", |b| {
        b.iter(|| black_box(table2::run().rows.len()))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
