//! Bench for Fig. 4: the single-precision unbalanced-capping ladders.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ugpc_experiments::unbalanced::{render, run_ladder};
use ugpc_hwsim::{OpKind, PlatformId, Precision};

fn bench(c: &mut Criterion) {
    // The paper's noteworthy sp result: LL == BB on 64-AMD-2-A100 and
    // both beat the default.
    let ladder = run_ladder(
        PlatformId::Amd2A100,
        OpKind::Gemm,
        Precision::Single,
        1,
        None,
    );
    println!("\n=== Fig. 4 (regenerated, noteworthy subplot) ===");
    println!("{}", render(&ladder));
    let sxm4 = run_ladder(
        PlatformId::Amd4A100,
        OpKind::Gemm,
        Precision::Single,
        1,
        None,
    );
    println!("{}", render(&sxm4));

    let mut group = c.benchmark_group("fig4_unbalanced_sp");
    group.sample_size(10);
    for op in OpKind::ALL {
        group.bench_with_input(BenchmarkId::new("sxm4_ladder", op.name()), &op, |b, &op| {
            b.iter(|| {
                black_box(
                    run_ladder(PlatformId::Amd4A100, op, Precision::Single, 4, None)
                        .rows
                        .len(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
