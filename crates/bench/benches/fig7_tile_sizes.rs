//! Bench for Fig. 7: the tile-size study. Prints a regenerated slice
//! (32-AMD-4-A100 GEMM dp across its three tile sizes), then benchmarks
//! per-tile-size runs.

// Bench setup code may unwrap, same as tests (the workspace denies
// unwrap_used in library code only).
#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ugpc_core::{run_study, RunConfig};
use ugpc_experiments::fig7::tile_sizes;
use ugpc_hwsim::{OpKind, PlatformId, Precision};

fn bench(c: &mut Criterion) {
    println!("\n=== Fig. 7 (regenerated slice): 32-AMD-4-A100 GEMM dp ===");
    for nb in tile_sizes(PlatformId::Amd4A100, OpKind::Gemm) {
        for config in ["HHHH", "HHBB", "BBBB"] {
            let cfg = RunConfig::paper(PlatformId::Amd4A100, OpKind::Gemm, Precision::Double)
                .with_tile(nb)
                .with_gpu_config(config.parse().unwrap());
            let r = run_study(&cfg);
            println!(
                "Nt={nb:<5} {config}: {:.2} Gflop/s/W",
                r.efficiency_gflops_w
            );
        }
    }

    let mut group = c.benchmark_group("fig7_tile_sizes");
    group.sample_size(10);
    for nb in tile_sizes(PlatformId::Amd4A100, OpKind::Gemm) {
        group.bench_with_input(BenchmarkId::from_parameter(nb), &nb, |b, &nb| {
            let cfg = RunConfig::paper(PlatformId::Amd4A100, OpKind::Gemm, Precision::Double)
                .with_tile(nb)
                .scaled_down(2)
                .with_gpu_config("BBBB".parse().unwrap());
            b.iter(|| black_box(run_study(&cfg).efficiency_gflops_w))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
