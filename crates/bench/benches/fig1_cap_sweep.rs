//! Bench for Fig. 1: the single-kernel cap sweep on A100-SXM4-40GB.
//! Prints the regenerated best-efficiency points, then benchmarks the
//! sweep machinery.

// Bench setup code may unwrap, same as tests (the workspace denies
// unwrap_used in library code only).
#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ugpc_capping::{best_point, cap_sweep};
use ugpc_hwsim::{GpuModel, Precision};

fn print_regenerated_rows() {
    println!("\n=== Fig. 1 (regenerated): best cap per size, A100-SXM4-40GB ===");
    for precision in Precision::ALL {
        for size in [1024usize, 2048, 3072, 4096, 5120] {
            let sweep = cap_sweep(GpuModel::A100Sxm4_40, size, precision, 0.02);
            let best = best_point(&sweep);
            let free = sweep.last().unwrap();
            println!(
                "{} n={size}: best cap {:.0} %TDP, eff {:.1} Gflop/s/W ({:+.1} % vs uncapped)",
                precision.short(),
                best.cap_frac * 100.0,
                best.efficiency,
                (best.efficiency / free.efficiency - 1.0) * 100.0,
            );
        }
    }
}

fn bench(c: &mut Criterion) {
    print_regenerated_rows();
    let mut group = c.benchmark_group("fig1_cap_sweep");
    for &size in &[1024usize, 5120] {
        for precision in Precision::ALL {
            group.bench_with_input(BenchmarkId::new(precision.short(), size), &size, |b, &n| {
                b.iter(|| {
                    let sweep = cap_sweep(GpuModel::A100Sxm4_40, black_box(n), precision, 0.02);
                    black_box(best_point(&sweep).efficiency)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
