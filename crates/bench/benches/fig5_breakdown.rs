//! Bench for Fig. 5: per-device energy breakdown on 24-Intel-2-V100.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ugpc_experiments::fig5;

fn bench(c: &mut Criterion) {
    let fig = fig5::run(1);
    println!("\n=== Fig. 5 (regenerated) ===");
    println!("{}", fig5::render(&fig));

    let mut group = c.benchmark_group("fig5_breakdown");
    group.sample_size(10);
    group.bench_function("both_ops_reduced", |b| {
        b.iter(|| black_box(fig5::run(4).ladders.len()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
