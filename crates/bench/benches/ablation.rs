//! Ablation benches: the scheduler zoo under unbalanced caps, and the
//! dynamic-capping controller versus the static oracle.

// Bench setup code may unwrap, same as tests (the workspace denies
// unwrap_used in library code only).
#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ugpc_capping::run_dynamic;
use ugpc_core::{run_study, RunConfig};
use ugpc_experiments::ablation;
use ugpc_hwsim::{GpuDevice, GpuModel, KernelWork, OpKind, PlatformId, Precision};

fn bench(c: &mut Criterion) {
    let a = ablation::run_scheduler_ablation(OpKind::Gemm, 1);
    println!("\n=== Scheduler ablation (regenerated) ===");
    println!("{}", ablation::render_schedulers(&a));
    let d = ablation::run_dynamic_ablation();
    println!("{}", ablation::render_dynamic(&d));
    let stale = ugpc_experiments::ext_models::run_stale_ablation(2);
    println!(
        "{}",
        ugpc_experiments::ext_models::render("Stale-model ablation", &stale)
    );
    let noise = ugpc_experiments::ext_models::run_noise_ablation(2);
    println!(
        "{}",
        ugpc_experiments::ext_models::render("Calibration-noise ablation", &noise)
    );

    let mut group = c.benchmark_group("ablation_schedulers");
    group.sample_size(10);
    for policy in ablation::policies() {
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.name()),
            &policy,
            |b, &policy| {
                let cfg = RunConfig::paper(PlatformId::Amd4A100, OpKind::Gemm, Precision::Double)
                    .scaled_down(4)
                    .with_gpu_config("HHBB".parse().unwrap())
                    .with_scheduler(policy);
                b.iter(|| black_box(run_study(&cfg).gflops))
            },
        );
    }
    group.finish();

    c.bench_function("ablation_dynamic/40_epochs", |b| {
        let work = KernelWork::gemm_tile(5760, Precision::Double);
        b.iter(|| {
            let mut gpu = GpuDevice::new(0, GpuModel::A100Sxm4_40);
            black_box(run_dynamic(&mut gpu, &work, 40, 3).final_cap)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
