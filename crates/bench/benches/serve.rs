//! Service-path benches: what a request costs end-to-end through the TCP
//! service when the result cache hits versus when every request must run
//! the simulation. The gap between the two is the cache's whole value
//! proposition — a hit should be protocol-only (µs), a miss pays the full
//! virtual-time simulation (ms).

// Bench setup code may unwrap, same as tests (the workspace denies
// unwrap_used in library code only).
#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ugpc_core::RunConfig;
use ugpc_hwsim::{OpKind, PlatformId, Precision};
use ugpc_serve::{Client, ServeOptions, Server, ServerHandle};

fn tiny() -> RunConfig {
    RunConfig::paper(PlatformId::Amd4A100, OpKind::Gemm, Precision::Double).scaled_down(8)
}

fn spawn() -> ServerHandle {
    Server::bind("127.0.0.1:0", ServeOptions::default())
        .expect("bind ephemeral port")
        .spawn()
}

/// Round-trip latency of a request answered from the cache: the server is
/// primed once, then every iteration is a pure protocol + cache-lookup
/// cost.
fn cache_hit(c: &mut Criterion) {
    let handle = spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    client.run(tiny()).unwrap(); // prime
    let mut group = c.benchmark_group("serve");
    group.bench_function("cache_hit", |b| {
        b.iter(|| black_box(client.run(tiny()).unwrap()))
    });
    group.finish();
    handle.stop();
}

/// Round-trip latency when the cache cannot help: the cache is cleared
/// before every request, so each iteration pays protocol + queueing +
/// a full simulation. (The clear itself is a cheap extra round-trip,
/// noted here for honesty; it is orders of magnitude below the
/// simulation cost it unmasks.)
fn cache_miss(c: &mut Criterion) {
    let handle = spawn();
    let mut client = Client::connect(handle.addr()).unwrap();
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    group.bench_function("cache_miss", |b| {
        b.iter(|| {
            client.clear_cache().unwrap();
            black_box(client.run(tiny()).unwrap())
        })
    });
    group.finish();
    handle.stop();
}

criterion_group!(benches, cache_hit, cache_miss);
criterion_main!(benches);
