//! Bench for Fig. 3: the double-precision unbalanced-capping ladders.
//! Prints the regenerated headline subplot (32-AMD-4-A100), then
//! benchmarks single ladder runs at reduced scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ugpc_experiments::unbalanced::{render, run_ladder};
use ugpc_hwsim::{OpKind, PlatformId, Precision};

fn bench(c: &mut Criterion) {
    // Regenerate the paper's Fig. 3a/3d rows (full scale — fast).
    for op in OpKind::ALL {
        let ladder = run_ladder(PlatformId::Amd4A100, op, Precision::Double, 1, None);
        println!("\n=== Fig. 3 (regenerated) ===");
        println!("{}", render(&ladder));
    }

    let mut group = c.benchmark_group("fig3_unbalanced_dp");
    group.sample_size(10);
    for platform in PlatformId::ALL {
        group.bench_with_input(
            BenchmarkId::new("gemm_ladder", platform.name()),
            &platform,
            |b, &pf| {
                b.iter(|| {
                    black_box(
                        run_ladder(pf, OpKind::Gemm, Precision::Double, 4, None)
                            .rows
                            .len(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
