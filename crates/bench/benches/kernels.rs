//! Micro-benches of the substrate itself: reference tile kernels, the
//! native work-stealing executor, the virtual-time simulator, and DAG
//! construction — the costs a downstream user of the library pays.

// Bench setup code may unwrap, same as tests (the workspace denies
// unwrap_used in library code only).
#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use ugpc_hwsim::{Node, PlatformId, Precision};
use ugpc_linalg::{build_gemm, build_potrf, run_potrf_native, spd_tiled, Tile, Trans};
use ugpc_runtime::{simulate, DataRegistry, SimOptions};

fn tile_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("tile_kernels");
    for &n in &[32usize, 64, 128] {
        let a = Tile::<f64>::from_fn(n, |i, j| ((i * 31 + j * 7) % 13) as f64 - 6.0);
        let b = Tile::<f64>::from_fn(n, |i, j| ((i * 17 + j * 3) % 11) as f64 - 5.0);
        group.throughput(Throughput::Elements((2 * n * n * n) as u64));
        group.bench_with_input(BenchmarkId::new("dgemm", n), &n, |bch, _| {
            bch.iter(|| {
                let mut cc = Tile::<f64>::zeros(n);
                ugpc_linalg::gemm(Trans::No, Trans::No, 1.0, &a, &b, 0.0, &mut cc);
                black_box(cc)
            })
        });
        group.bench_with_input(BenchmarkId::new("dpotrf", n), &n, |bch, _| {
            let spd = {
                let mut t = Tile::<f64>::scaled_identity(n, n as f64);
                ugpc_linalg::gemm(Trans::No, Trans::Yes, 1.0, &a, &a, 1.0, &mut t);
                t
            };
            bch.iter(|| {
                let mut w = spd.clone();
                ugpc_linalg::potrf_lower(&mut w).unwrap();
                black_box(w)
            })
        });
    }
    group.finish();
}

fn native_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("native_executor");
    group.sample_size(10);
    for &threads in &[1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("potrf_6x32", threads),
            &threads,
            |b, &threads| {
                let mut reg = DataRegistry::new();
                let op = build_potrf(6, 32, Precision::Double, &mut reg);
                b.iter(|| {
                    let a = spd_tiled::<f64>(6, 32, 42);
                    black_box(run_potrf_native(&op, &a, threads).unwrap().executed)
                })
            },
        );
    }
    group.finish();
}

fn simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(10);
    // Events per second of the virtual-time executor: the cost of
    // simulating the paper's POTRF (nt=20 -> 1540 tasks).
    group.throughput(Throughput::Elements(1540));
    group.bench_function("potrf_nt20_dmdas", |b| {
        b.iter(|| {
            let mut node = Node::new(PlatformId::Amd4A100);
            let mut reg = DataRegistry::new();
            let op = build_potrf(20, 2880, Precision::Double, &mut reg);
            let trace = simulate(&mut node, &op.graph, &mut reg, SimOptions::default());
            black_box(trace.makespan)
        })
    });
    group.finish();
}

fn graph_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_construction");
    // Full paper-size POTRF DAG: 60 tiles -> 37 820 tasks with inferred deps.
    group.throughput(Throughput::Elements(37_820));
    group.bench_function("potrf_nt60", |b| {
        b.iter(|| {
            let mut reg = DataRegistry::new();
            black_box(
                build_potrf(60, 2880, Precision::Double, &mut reg)
                    .graph
                    .len(),
            )
        })
    });
    group.throughput(Throughput::Elements(13usize.pow(3) as u64));
    group.bench_function("gemm_nt13", |b| {
        b.iter(|| {
            let mut reg = DataRegistry::new();
            black_box(
                build_gemm(13, 5760, Precision::Double, &mut reg)
                    .graph
                    .len(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    tile_kernels,
    native_executor,
    simulator,
    graph_construction
);
criterion_main!(benches);
