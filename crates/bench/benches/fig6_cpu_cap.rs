//! Bench for Fig. 6: the CPU-capping study on 24-Intel-2-V100.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use ugpc_core::{run_study, RunConfig};
use ugpc_experiments::fig6;
use ugpc_hwsim::{OpKind, PlatformId, Precision, Watts};

fn bench(c: &mut Criterion) {
    let fig = fig6::run(1);
    println!("\n=== Fig. 6 (regenerated) ===");
    println!("{}", fig6::render(&fig));

    let mut group = c.benchmark_group("fig6_cpu_cap");
    group.sample_size(10);
    for capped in [false, true] {
        group.bench_with_input(
            BenchmarkId::new("gemm_dp", if capped { "cpu_capped" } else { "no_cap" }),
            &capped,
            |b, &capped| {
                let mut cfg =
                    RunConfig::paper(PlatformId::Intel2V100, OpKind::Gemm, Precision::Double)
                        .scaled_down(2);
                if capped {
                    cfg = cfg.with_cpu_cap(1, Watts(60.0));
                }
                b.iter(|| black_box(run_study(&cfg).efficiency_gflops_w))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
