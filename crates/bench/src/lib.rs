//! # ugpc-bench
//!
//! Criterion benchmarks regenerating every paper table and figure (see
//! `benches/`): each bench first prints the regenerated rows/series so
//! `cargo bench` output doubles as a reproduction log, then measures the
//! machinery. `kernels.rs` additionally micro-benchmarks the substrate
//! (tile kernels, native executor, virtual-time simulator, DAG builders).
