//! Fig. 1-style single-kernel cap sweep: efficiency / performance / energy
//! of a one-tile GEMM as the power cap moves from the hardware minimum to
//! TDP, on each of the paper's three GPU models.
//!
//! ```text
//! cargo run --release --example capping_sweep
//! ```

// Demo code may unwrap, same as tests (the workspace denies
// unwrap_used in library code only).
#![allow(clippy::unwrap_used)]

use ugpc::capping::{best_point, cap_sweep};
use ugpc::prelude::*;

fn bar(frac: f64, width: usize) -> String {
    let n = (frac * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

fn main() {
    for model in [
        GpuModel::V100Pcie32,
        GpuModel::A100Pcie40,
        GpuModel::A100Sxm4_40,
    ] {
        for precision in [Precision::Double, Precision::Single] {
            let sweep = cap_sweep(model, 5120, precision, 0.04);
            let best = best_point(&sweep);
            let max_eff = best.efficiency;
            println!("\n{model} / {precision} GEMM 5120 — efficiency vs power cap");
            for p in &sweep {
                let marker = if (p.cap_frac - best.cap_frac).abs() < 1e-9 {
                    "  <- best"
                } else {
                    ""
                };
                println!(
                    "  {:>3.0} % TDP | {:<32} {:>6.1} Gflop/s/W | {:>6.0} Gflop/s{marker}",
                    p.cap_frac * 100.0,
                    bar(p.efficiency / max_eff, 32),
                    p.efficiency,
                    p.gflops,
                );
            }
            let free = sweep.last().unwrap();
            println!(
                "  best cap {:.0} % TDP: {:+.1} % efficiency, {:.1} % slowdown vs uncapped",
                best.cap_frac * 100.0,
                (best.efficiency / free.efficiency - 1.0) * 100.0,
                (1.0 - best.gflops / free.gflops) * 100.0,
            );
        }
    }
}
