//! The headline experiment: the full unbalanced-capping ladder
//! (`LLLL … HHHH … BBBB`) for GEMM and POTRF on the 4-GPU platform, at the
//! paper's problem sizes.
//!
//! ```text
//! cargo run --release --example unbalanced_capping
//! ```

use ugpc::experiments::unbalanced::{render, run_ladder};
use ugpc::prelude::*;

fn main() {
    for op in [OpKind::Gemm, OpKind::Potrf] {
        for precision in [Precision::Double, Precision::Single] {
            let ladder = run_ladder(PlatformId::Amd4A100, op, precision, 1, None);
            println!("{}", render(&ladder));
            let best = ladder.best_config();
            let hhhh = ladder.row(&"H".repeat(4));
            println!(
                "best efficiency: {} at {:.2} Gflop/s/W ({:+.2} % vs default, perf {:+.2} %)\n",
                best.config,
                best.report.efficiency_gflops_w,
                (best.report.efficiency_gflops_w / hhhh.report.efficiency_gflops_w - 1.0) * 100.0,
                best.vs_default.perf_pct,
            );
        }
    }
}
