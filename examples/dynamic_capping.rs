//! Future-work demo: the DEPO-like online controller discovers the
//! best-efficiency power cap without any offline sweep, by hill-climbing
//! on measured efficiency while an iterative workload runs.
//!
//! ```text
//! cargo run --release --example dynamic_capping
//! ```

use ugpc::capping::run_dynamic;
use ugpc::hwsim::{GpuDevice, KernelWork};
use ugpc::prelude::*;

fn main() {
    let mut gpu = GpuDevice::new(0, GpuModel::A100Sxm4_40);
    let work = KernelWork::gemm_tile(5760, Precision::Double);

    println!(
        "dynamic capping on {} — DGEMM 5760, starting uncapped at {:.0} W",
        gpu.model(),
        gpu.power_limit().value()
    );
    let run = run_dynamic(&mut gpu, &work, 32, 3);

    println!("\nepoch   cap (W)   efficiency (Gflop/s/W)");
    for (i, (cap, eff)) in run.history.iter().enumerate() {
        println!("{:>5}   {:>7.0}   {:>10.2}", i, cap.value(), eff);
    }
    println!(
        "\nconverged at {:.0} W ({:.0} % of TDP) — the paper's offline study picked 54 % (Table I)",
        run.final_cap.value(),
        run.final_cap.value() / 400.0 * 100.0,
    );
    println!(
        "efficiency: {:.2} Gflop/s/W, {:+.1} % vs the uncapped first epoch",
        run.final_efficiency,
        (run.final_efficiency / run.history[0].1 - 1.0) * 100.0,
    );
}
