//! Export a run's execution trace for Perfetto / chrome://tracing, plus a
//! terminal Gantt sketch — the simulator's counterpart to StarPU's FxT
//! traces.
//!
//! The sinks all ride the executor's observer stream: one simulation
//! feeds the `RunTrace` aggregates (via `TraceBuilder`), the streaming
//! Perfetto export (with transfer and eviction lanes the post-hoc
//! `chrome_trace` cannot reconstruct), and a per-device power timeline.
//!
//! ```text
//! cargo run --release --example trace_export
//! # then open /tmp/ugpc_trace.json in https://ui.perfetto.dev
//! ```

use ugpc::linalg::build_potrf;
use ugpc::prelude::*;
use ugpc::runtime::{
    build_workers, simulate_observed, DataRegistry, Observer, PerfModel, PerfettoSink,
    PowerTimeline, SimOptions, TraceBuilder,
};

fn main() {
    let mut node = Node::new(PlatformId::Amd4A100);
    // Unbalanced caps make the Gantt interesting: two GPUs run slow.
    ugpc::capping::apply_gpu_caps(
        &mut node,
        &"HHLL".parse().expect("HHLL is a valid gpu config"),
        OpKind::Potrf,
        Precision::Double,
    )
    .expect("HHLL caps fit a 4-GPU node");

    let mut reg = DataRegistry::new();
    let op = build_potrf(12, 2880, Precision::Double, &mut reg);

    let mut builder = TraceBuilder::new();
    let mut sink = PerfettoSink::new();
    let mut timeline = PowerTimeline::new(48);
    {
        let mut observers: [&mut dyn Observer; 3] = [&mut builder, &mut sink, &mut timeline];
        let mut perf = PerfModel::new();
        simulate_observed(
            &mut node,
            &op.graph,
            &mut reg,
            SimOptions {
                keep_records: true,
                ..Default::default()
            },
            &mut perf,
            &mut observers,
        );
    }
    let trace = builder.into_trace();
    let (workers, _) = build_workers(node.spec());

    println!(
        "POTRF 12×2880 under HHLL: {:.2} s, {:.0} J, {} tasks ({} on CPUs)",
        trace.makespan.value(),
        trace.total_energy().value(),
        trace.cpu_tasks + trace.gpu_tasks,
        trace.cpu_tasks,
    );
    println!("\nGantt (last 4 rows are the GPUs; note the capped gpu2/gpu3):\n");
    let gantt = trace.gantt(&workers, 100);
    // Print only workers that did something, to keep the demo readable.
    for line in gantt.lines() {
        if line.contains('#') || line.contains('+') {
            println!("{line}");
        }
    }

    let profile = timeline.into_profile();
    println!(
        "\nPeak device power over {} time bins:",
        profile.avg_w[0].len()
    );
    for (lane, peak) in profile.lanes.iter().zip(&profile.peak_w) {
        println!("  {lane:>6}: {peak:.0} W");
    }

    let json = sink.into_json();
    let path = "/tmp/ugpc_trace.json";
    std::fs::write(path, &json).expect("write trace");
    println!(
        "\nwrote {path} ({} bytes) — open it in https://ui.perfetto.dev",
        json.len()
    );
}
