//! Export a run's execution trace for Perfetto / chrome://tracing, plus a
//! terminal Gantt sketch — the simulator's counterpart to StarPU's FxT
//! traces.
//!
//! ```text
//! cargo run --release --example trace_export
//! # then open /tmp/ugpc_trace.json in https://ui.perfetto.dev
//! ```

use ugpc::linalg::build_potrf;
use ugpc::prelude::*;
use ugpc::runtime::{build_workers, chrome_trace, simulate, DataRegistry, SimOptions};

fn main() {
    let mut node = Node::new(PlatformId::Amd4A100);
    // Unbalanced caps make the Gantt interesting: two GPUs run slow.
    ugpc::capping::apply_gpu_caps(
        &mut node,
        &"HHLL".parse().expect("HHLL is a valid gpu config"),
        OpKind::Potrf,
        Precision::Double,
    )
    .expect("HHLL caps fit a 4-GPU node");

    let mut reg = DataRegistry::new();
    let op = build_potrf(12, 2880, Precision::Double, &mut reg);
    let trace = simulate(
        &mut node,
        &op.graph,
        &mut reg,
        SimOptions {
            keep_records: true,
            ..Default::default()
        },
    );
    let (workers, _) = build_workers(node.spec());

    println!(
        "POTRF 12×2880 under HHLL: {:.2} s, {:.0} J, {} tasks ({} on CPUs)",
        trace.makespan.value(),
        trace.total_energy().value(),
        trace.cpu_tasks + trace.gpu_tasks,
        trace.cpu_tasks,
    );
    println!("\nGantt (last 4 rows are the GPUs; note the capped gpu2/gpu3):\n");
    let gantt = trace.gantt(&workers, 100);
    // Print only workers that did something, to keep the demo readable.
    for line in gantt.lines() {
        if line.contains('#') || line.contains('+') {
            println!("{line}");
        }
    }

    let json = chrome_trace(&trace, &op.graph, &workers).expect("records kept");
    let path = "/tmp/ugpc_trace.json";
    std::fs::write(path, &json).expect("write trace");
    println!(
        "\nwrote {path} ({} bytes) — open it in https://ui.perfetto.dev",
        json.len()
    );
}
