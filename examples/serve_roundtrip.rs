//! Serve roundtrip: spawn the simulation service on an ephemeral port,
//! submit a GEMM request through the bundled client, and check that the
//! reply is byte-for-byte identical to calling the library directly.
//!
//! ```text
//! cargo run --release --example serve_roundtrip
//! ```

// Demo code may unwrap, same as tests (the workspace denies
// unwrap_used in library code only).
#![allow(clippy::unwrap_used)]

use ugpc::prelude::*;
use ugpc::serve::{Client, RunRequest, ServeOptions, Server};

fn main() {
    let cfg =
        RunConfig::paper(PlatformId::Amd4A100, OpKind::Gemm, Precision::Double).scaled_down(4);

    // Port 0 → the OS picks a free ephemeral port; no config needed.
    let handle = Server::bind("127.0.0.1:0", ServeOptions::default())
        .unwrap()
        .spawn();
    println!("serving on {}", handle.addr());

    let mut client = Client::connect(handle.addr()).unwrap();
    let request = RunRequest::new(cfg.clone());
    println!("cache key: {}", request.cache_key());

    let served = client.run_request(&request).unwrap();
    let direct = ugpc::run_study(&cfg);

    // The cache stores fully serialized response lines, so a served
    // report is byte-identical to the library call by construction.
    let served_json = serde_json::to_string(&served).unwrap();
    let direct_json = serde_json::to_string(&direct).unwrap();
    assert_eq!(served_json, direct_json, "service must mirror the library");
    println!(
        "served == direct: {} Gflop/s, {:.3} Gflop/s/W ({} bytes of JSON)",
        served.gflops.round(),
        served.efficiency_gflops_w,
        served_json.len()
    );

    // A second identical request is answered from the cache.
    let again = client.run_request(&request).unwrap();
    assert_eq!(serde_json::to_string(&again).unwrap(), served_json);
    let stats = client.stats().unwrap();
    println!(
        "cache: {} hit(s), {} miss(es), {} simulation(s) executed",
        stats.cache.hits, stats.cache.misses, stats.simulations_executed
    );
    assert_eq!(stats.simulations_executed, 1);

    handle.stop();
    println!("server stopped cleanly");
}
