//! Extension beyond the paper's two operations: tiled LU (no pivoting) —
//! numerically verified with the native executor, then run under the cap
//! ladder on the 4-GPU platform to show the unbalanced-capping trade-off
//! generalizes to a third DAG shape.
//!
//! ```text
//! cargo run --release --example lu_factorization
//! ```

// Demo code may unwrap, same as tests (the workspace denies
// unwrap_used in library code only).
#![allow(clippy::unwrap_used)]

use ugpc::linalg::{build_getrf, dd_tiled, gemm, run_getrf_native, Tile, Trans};
use ugpc::prelude::*;
use ugpc::runtime::{simulate, DataRegistry, SimOptions};

fn main() {
    // Numeric verification on host threads.
    let (nt, nb) = (5, 16);
    let n = nt * nb;
    let a = dd_tiled::<f64>(nt, nb, 7);
    let a0 = a.to_dense();
    let mut reg = DataRegistry::new();
    let op = build_getrf(nt, nb, Precision::Double, &mut reg);
    let stats = run_getrf_native(&op, &a, 4).expect("diagonally dominant input");
    let f = a.to_dense();
    let l = Tile::from_fn(n, |i, j| {
        if i > j {
            f[(i, j)]
        } else if i == j {
            1.0
        } else {
            0.0
        }
    });
    let u = Tile::from_fn(n, |i, j| if i <= j { f[(i, j)] } else { 0.0 });
    let mut back = Tile::zeros(n);
    gemm(Trans::No, Trans::No, 1.0, &l, &u, 0.0, &mut back);
    println!(
        "native LU  n = {n}: {} tasks, max |L·U − A| = {:.2e}",
        stats.executed,
        back.max_abs_diff(&a0)
    );

    // Cap ladder on the simulated 4×A100 node at a realistic size.
    println!("\nLU under the cap ladder — 32-AMD-4-A100, double precision, Nt = 2880, 20 tiles");
    println!(
        "{:<8} {:>10} {:>12} {:>14}",
        "config", "Gflop/s", "energy (kJ)", "Gflop/s/W"
    );
    for config in ["LLLL", "HHLL", "HHHH", "HHBB", "BBBB"] {
        let mut node = Node::new(PlatformId::Amd4A100);
        let caps: CapConfig = config.parse().unwrap();
        // LU is not in Table II; use the GEMM dp power states (its trailing
        // update is GEMM-dominated).
        ugpc::capping::apply_gpu_caps(&mut node, &caps, OpKind::Gemm, Precision::Double).unwrap();
        let mut reg = DataRegistry::new();
        let op = build_getrf(20, 2880, Precision::Double, &mut reg);
        let trace = simulate(&mut node, &op.graph, &mut reg, SimOptions::default());
        println!(
            "{config:<8} {:>10.0} {:>12.2} {:>14.2}",
            trace.perf().as_gflops(),
            trace.total_energy().value() / 1e3,
            trace.efficiency().as_gflops_per_watt()
        );
    }
}
