//! Quickstart: cap a GPU through the NVML-shaped API, run a tiled GEMM on
//! the simulated 4×A100 node, and read the paper's three metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

// Demo code may unwrap, same as tests (the workspace denies
// unwrap_used in library code only).
#![allow(clippy::unwrap_used)]

use ugpc::prelude::*;

fn main() {
    // A live instance of the paper's 32-AMD-4-A100 node ("chuc-1").
    let mut node = Node::new(PlatformId::Amd4A100);

    // Talk to it exactly as the paper's tooling talks to NVML.
    let mut nvml = Nvml::new(node.gpus_mut());
    println!("devices:");
    for i in 0..nvml.device_count() {
        let (min_mw, max_mw) = nvml.power_management_limit_constraints(i).unwrap();
        println!(
            "  [{i}] {}  power limit window [{:.0} W, {:.0} W]",
            nvml.device_name(i).unwrap(),
            min_mw as f64 / 1e3,
            max_mw as f64 / 1e3,
        );
    }
    // Cap GPU 3 to 216 W (the paper's P_best for double-precision GEMM).
    nvml.set_power_management_limit(3, 216_000).unwrap();
    println!(
        "\ncapped GPU 3 to {} mW\n",
        nvml.power_management_limit(3).unwrap()
    );

    // Run the paper's GEMM (reduced 4× for a fast demo) on the default
    // configuration and on HHHB (the cap we just chose), via the study API.
    let base =
        RunConfig::paper(PlatformId::Amd4A100, OpKind::Gemm, Precision::Double).scaled_down(4);
    let hhhh = run_study(&base);
    let hhhb = run_study(&base.clone().with_gpu_config("HHHB".parse().unwrap()));

    for r in [&hhhh, &hhhb] {
        println!(
            "{}  {:>8.0} Gflop/s  {:>9.0} J  {:>6.2} Gflop/s/W   ({} tasks on CPUs, {} on GPUs)",
            r.gpu_config,
            r.gflops,
            r.total_energy_j,
            r.efficiency_gflops_w,
            r.cpu_tasks,
            r.gpu_tasks
        );
    }
    let c = compare(&hhhb, &hhhh);
    println!(
        "\nHHHB vs HHHH: perf {:+.2} %, energy {:+.2} %, efficiency {:+.2} %",
        c.perf_pct, c.energy_pct, c.eff_gain_pct
    );
}
