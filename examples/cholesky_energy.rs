//! Cholesky factorization end-to-end: numerical verification with the
//! native threaded executor, then an energy comparison of every scheduler
//! on the capped simulated platform.
//!
//! ```text
//! cargo run --release --example cholesky_energy
//! ```

// Demo code may unwrap, same as tests (the workspace denies
// unwrap_used in library code only).
#![allow(clippy::unwrap_used)]

use ugpc::linalg::{build_potrf, potrf_residual, run_potrf_native, spd_tiled, Scalar};
use ugpc::prelude::*;
use ugpc::runtime::DataRegistry;

fn verify_native<T: Scalar>(nt: usize, nb: usize) {
    let a = spd_tiled::<T>(nt, nb, 42);
    let a0 = a.to_dense();
    let mut reg = DataRegistry::new();
    let op = build_potrf(nt, nb, T::precision(), &mut reg);
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get());
    let stats = run_potrf_native(&op, &a, threads).expect("SPD input factorizes");
    let residual = potrf_residual(&a0, &a);
    println!(
        "native POTRF {:>6}  n = {:>4} ({} tiles of {nb}): {} tasks on {} threads, residual {:.2e}",
        T::precision().to_string(),
        nt * nb,
        nt * nt,
        stats.executed,
        threads,
        residual,
    );
    assert!(residual < 100.0 * T::epsilon() * (nt * nb) as f64);
}

fn main() {
    println!("— numerical verification (real kernels, work-stealing threads) —");
    verify_native::<f64>(6, 32);
    verify_native::<f32>(6, 32);

    println!("\n— scheduler comparison on 32-AMD-4-A100, POTRF dp, config HHBB —");
    let schedulers = [
        SchedPolicy::Eager,
        SchedPolicy::Random { seed: 7 },
        SchedPolicy::Dm,
        SchedPolicy::Dmda,
        SchedPolicy::Dmdas,
        SchedPolicy::EnergyAware { lambda: 0.3 },
    ];
    let base = RunConfig::paper(PlatformId::Amd4A100, OpKind::Potrf, Precision::Double)
        .scaled_down(2)
        .with_gpu_config("HHBB".parse().unwrap());
    println!(
        "{:<8} {:>10} {:>12} {:>14} {:>10}",
        "policy", "Gflop/s", "energy (kJ)", "Gflop/s/W", "cpu tasks"
    );
    for policy in schedulers {
        let r = run_study(&base.clone().with_scheduler(policy));
        println!(
            "{:<8} {:>10.0} {:>12.2} {:>14.2} {:>10}",
            r.scheduler,
            r.gflops,
            r.total_energy_j / 1e3,
            r.efficiency_gflops_w,
            r.cpu_tasks
        );
    }
}
