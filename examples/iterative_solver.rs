//! Future-work demo (§VII): node-level dynamic power capping for an
//! iterative application. The same tiled GEMM runs 25 outer iterations on
//! the simulated 4×A100 node; between iterations, a per-GPU hill-climbing
//! controller adjusts each cap from the device's measured efficiency, and
//! the runtime recalibrates its performance models — no offline Table II
//! sweep required.
//!
//! ```text
//! cargo run --release --example iterative_solver
//! ```

use ugpc::prelude::*;
use ugpc::{dynamic_vs_static_oracle, RunConfig};

fn main() {
    let cfg =
        RunConfig::paper(PlatformId::Amd4A100, OpKind::Gemm, Precision::Double).scaled_down(2);
    let (dynamic, oracle) = dynamic_vs_static_oracle(&cfg, 25);

    println!("iter   caps (W)                  node eff (Gflop/s/W)");
    for (i, it) in dynamic.iterations.iter().enumerate() {
        let caps: Vec<String> = it.caps_w.iter().map(|c| format!("{c:>3.0}")).collect();
        println!(
            "{:>4}   [{}]   {:>8.2}",
            i,
            caps.join(", "),
            it.efficiency_gflops_w
        );
    }
    println!(
        "\ndynamic:      {:.2} Gflop/s/W at caps {:?} W",
        dynamic.final_efficiency_gflops_w,
        dynamic
            .final_caps_w
            .iter()
            .map(|c| c.round() as i64)
            .collect::<Vec<_>>(),
    );
    println!(
        "static BBBB:  {:.2} Gflop/s/W at 216 W (the paper's offline oracle)",
        oracle.efficiency_gflops_w
    );
    println!(
        "improvement over uncapped start: {:+.1} %",
        (dynamic.final_efficiency_gflops_w / dynamic.initial_efficiency_gflops_w - 1.0) * 100.0
    );
}
