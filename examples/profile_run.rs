//! Profile one run with the critical-path energy-attribution profiler:
//! where do the makespan and the busy joules go when every GPU is capped
//! to its best-efficiency power?
//!
//! A Cholesky factorization under the fully capped `BBBB` configuration
//! is profiled against its own task graph's critical path: the profiler
//! rides the executor event stream (so the report is bitwise identical
//! to an unprofiled run) and splits busy time/energy into on-path vs
//! off-path work per device, then lists the five hottest tasks.
//!
//! ```text
//! cargo run --release --example profile_run
//! ```

use ugpc::prelude::*;
use ugpc::run_study_profiled;

fn main() {
    let cfg = RunConfig::paper(PlatformId::Amd4A100, OpKind::Potrf, Precision::Double)
        .scaled_down(2)
        .with_gpu_config("BBBB".parse().expect("BBBB fits the 4-GPU node"));

    let profiled = run_study_profiled(&cfg, 5);
    let report = &profiled.report;
    let profile = &profiled.profile;

    println!(
        "POTRF n={} nb={} under {} on {}: {:.2} s, {:.0} J, {:.1} Gflop/s/W\n",
        report.n,
        report.nb,
        report.gpu_config,
        report.platform,
        report.makespan_s,
        report.total_energy_j,
        report.efficiency_gflops_w,
    );

    // The attribution table: on-path vs off-path busy time and energy
    // per (device, kernel, precision), worker utilization, hot tasks.
    println!("{}", profile.render());

    println!(
        "critical path covers {:.1}% of the makespan; slack {:.3} s; gpu imbalance {:.3} s",
        100.0 * profile.path_coverage(),
        profile.path_slack_s,
        profile.gpu_imbalance_s(),
    );

    // The exactness contract: the profiler is a read-only witness.
    assert_eq!(
        profile.makespan_s.to_bits(),
        report.makespan_s.to_bits(),
        "attributed makespan is the report's makespan, bitwise"
    );
    profile
        .check_consistency(1e-9)
        .expect("attribution identities hold");
}
