//! Offline shim for `proptest` (see `shims/README.md`).
//!
//! Implements the surface this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_filter`, range and tuple
//! strategies, `collection::vec`, `bool::ANY`, and the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!` macros. Unlike real proptest there
//! is no shrinking: a failing case panics with its case index and seed,
//! which is reproducible because generation is fully deterministic
//! (splitmix64 keyed on the case index). Case count defaults to 64 and
//! honours `PROPTEST_CASES`.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Value`.
    ///
    /// `try_gen` returns `None` when a `prop_filter` rejects the draw;
    /// the runner retries with fresh entropy.
    pub trait Strategy: Sized {
        type Value;

        fn try_gen(&self, rng: &mut TestRng) -> Option<Self::Value>;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
            Map { inner: self, f }
        }

        fn prop_filter<P: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            pred: P,
        ) -> Filter<Self, P> {
            Filter {
                inner: self,
                pred,
                reason,
            }
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn try_gen(&self, rng: &mut TestRng) -> Option<O> {
            self.inner.try_gen(rng).map(&self.f)
        }
    }

    pub struct Filter<S, P> {
        inner: S,
        pred: P,
        #[allow(dead_code)]
        reason: &'static str,
    }

    impl<S: Strategy, P: Fn(&S::Value) -> bool> Strategy for Filter<S, P> {
        type Value = S::Value;
        fn try_gen(&self, rng: &mut TestRng) -> Option<S::Value> {
            let v = self.inner.try_gen(rng)?;
            if (self.pred)(&v) {
                Some(v)
            } else {
                None
            }
        }
    }

    /// Always produces the same value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn try_gen(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn try_gen(&self, rng: &mut TestRng) -> Option<f64> {
            assert!(self.start < self.end, "empty f64 strategy range");
            Some(self.start + (self.end - self.start) * rng.unit_f64())
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn try_gen(&self, rng: &mut TestRng) -> Option<f32> {
            assert!(self.start < self.end, "empty f32 strategy range");
            Some(self.start + (self.end - self.start) * rng.unit_f64() as f32)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn try_gen(&self, rng: &mut TestRng) -> Option<$t> {
                    assert!(self.start < self.end, "empty int strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    Some((self.start as i128 + off as i128) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn try_gen(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    let ($($s,)+) = self;
                    Some(($($s.try_gen(rng)?,)+))
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn try_gen(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + (rng.next_u64() % span) as usize;
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                // Give each element its own filter-retry budget.
                let mut slot = None;
                for _ in 0..100 {
                    if let Some(v) = self.element.try_gen(rng) {
                        slot = Some(v);
                        break;
                    }
                }
                out.push(slot?);
            }
            Some(out)
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniform `bool`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn try_gen(&self, rng: &mut TestRng) -> Option<bool> {
            Some(rng.next_u64() & 1 == 1)
        }
    }
}

pub mod test_runner {
    use std::fmt;

    /// Deterministic splitmix64 stream; each test case gets its own seed
    /// so failures reproduce regardless of case count.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_case(case: u64) -> Self {
            TestRng {
                state: 0x7567_7063_7072_6f70 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in [0, 1) with 53-bit precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// A failed `prop_assert!`; carries the formatted message.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: String) -> Self {
            TestCaseError { message }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    pub struct TestRunner {
        cases: u64,
    }

    impl Default for TestRunner {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            TestRunner { cases }
        }
    }

    impl TestRunner {
        pub fn cases(&self) -> u64 {
            self.cases
        }

        pub fn rng_for(&self, case: u64) -> TestRng {
            TestRng::from_case(case)
        }
    }

    /// Retry a strategy until it yields a value or the rejection budget
    /// is exhausted (mirrors proptest's "too many local rejects").
    pub fn generate<S: crate::strategy::Strategy>(
        strategy: &S,
        rng: &mut TestRng,
        what: &str,
    ) -> S::Value {
        for _ in 0..1000 {
            if let Some(v) = strategy.try_gen(rng) {
                return v;
            }
        }
        panic!("strategy for `{what}` rejected 1000 consecutive draws");
    }
}

#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let runner = $crate::test_runner::TestRunner::default();
                for case in 0..runner.cases() {
                    let mut rng = runner.rng_for(case);
                    $(
                        let $arg = $crate::test_runner::generate(
                            &($strat), &mut rng, stringify!($arg),
                        );
                    )*
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = result {
                        panic!(
                            "proptest case {case}/{total} failed: {e}",
                            total = runner.cases(),
                        );
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}` (both: `{:?}`)",
                stringify!($left),
                stringify!($right),
                l,
            )));
        }
    }};
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (f64, usize)> {
        (0.0..1.0f64, 3usize..10)
            .prop_map(|(x, n)| (x * 2.0, n))
            .prop_filter("n even", |&(_, n)| n % 2 == 0)
    }

    proptest! {
        #[test]
        fn ranges_in_bounds(x in -2.0..3.0f64, n in 1usize..7) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..7).contains(&n));
        }

        /// Doc comments are accepted before the test attribute.
        #[test]
        fn combinators_compose(pair in arb_pair()) {
            let (x, n) = pair;
            prop_assert!((0.0..2.0).contains(&x), "x out of range: {x}");
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn vec_sizes(v in crate::collection::vec(0u8..3, 2..6), b in crate::bool::ANY) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 3));
            let _ = b;
        }
    }

    #[test]
    fn determinism() {
        let mut a = crate::test_runner::TestRng::from_case(5);
        let mut b = crate::test_runner::TestRng::from_case(5);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "rejected 1000 consecutive draws")]
    fn impossible_filter_panics() {
        let strat = (0usize..5).prop_filter("never", |_| false);
        let mut rng = crate::test_runner::TestRng::from_case(0);
        let _ = crate::test_runner::generate(&strat, &mut rng, "x");
    }
}
