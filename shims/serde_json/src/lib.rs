//! Offline shim for `serde_json` (see `shims/README.md`): the
//! `to_string` / `to_string_pretty` / `from_str` / [`Value`] surface this
//! workspace uses, delegating to the serde shim's JSON value model.

pub use serde::json::{Error, Value};

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json())
}

/// Serialize to a two-space-indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_pretty())
}

/// Deserialize from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    T::from_value(&serde::json::parse(s)?)
}

/// Parse into the dynamic [`Value`] representation.
pub fn from_value<T: serde::Deserialize>(v: Value) -> Result<T, Error> {
    T::from_value(&v)
}

/// Serialize into the dynamic [`Value`] representation.
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

#[cfg(test)]
mod tests {
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Newtype(f64);

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    enum Kind {
        Plain,
        Tagged { level: u8, name: String },
        Wrapped(usize),
        Pair(i32, i32),
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Config {
        id: usize,
        scale: Newtype,
        kinds: Vec<Kind>,
        note: Option<String>,
        pair: Option<(usize, f64)>,
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Holder<T> {
        sp: T,
        dp: T,
    }

    #[test]
    fn derived_round_trip() {
        let cfg = Config {
            id: 7,
            scale: Newtype(2.5),
            kinds: vec![
                Kind::Plain,
                Kind::Tagged {
                    level: 3,
                    name: "x".into(),
                },
                Kind::Wrapped(9),
                Kind::Pair(-1, 2),
            ],
            note: None,
            pair: Some((4, 0.5)),
        };
        let json = super::to_string(&cfg).unwrap();
        let back: Config = super::from_str(&json).unwrap();
        assert_eq!(back, cfg);
        // Pretty form parses to the same thing.
        let pretty = super::to_string_pretty(&cfg).unwrap();
        let back2: Config = super::from_str(&pretty).unwrap();
        assert_eq!(back2, cfg);
        // Field names appear in the document.
        assert!(json.contains("\"kinds\""));
        assert!(json.contains("\"Tagged\""));
    }

    #[test]
    fn generic_round_trip() {
        let h = Holder {
            sp: Newtype(1.0),
            dp: Newtype(2.0),
        };
        let json = super::to_string(&h).unwrap();
        let back: Holder<Newtype> = super::from_str(&json).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn unknown_variant_errors() {
        assert!(super::from_str::<Kind>("\"Nope\"").is_err());
        assert!(super::from_str::<Kind>("{\"Nope\": 3}").is_err());
    }
}
