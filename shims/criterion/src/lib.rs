//! Offline shim for `criterion` (see `shims/README.md`).
//!
//! Provides the harness subset the `ugpc-bench` targets use:
//! `Criterion::benchmark_group`, `BenchmarkGroup::{throughput,
//! sample_size, bench_function, bench_with_input, finish}`,
//! `Bencher::iter`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!`/`criterion_main!` macros. Instead of criterion's
//! statistical engine it takes a handful of wall-clock samples per
//! benchmark and prints mean/min (plus element throughput when set) —
//! enough to compare paper configurations, not for micro-variance work.
//! Respects `--bench`/`--test` CLI noise that `cargo bench` passes.
//!
//! Two environment variables support a CI benchmark trajectory:
//! `UGPC_BENCH_JSON=<dir>` makes each harness write its results as
//! `<dir>/BENCH_<harness>.json` on exit (via `criterion_main!`), and
//! `UGPC_BENCH_SAMPLES=<n>` caps the per-benchmark sample count for
//! quick smoke runs.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock spent measuring each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);

/// Results accumulated across every group of the harness, for the
/// optional JSON report.
static RESULTS: Mutex<Vec<BenchRecord>> = Mutex::new(Vec::new());

struct BenchRecord {
    group: String,
    label: String,
    samples: usize,
    mean_ns: u128,
    min_ns: u128,
    /// Elements or bytes per second, when a throughput was declared.
    rate: Option<f64>,
}

/// The smoke-run sample cap, if `UGPC_BENCH_SAMPLES` is set.
fn sample_cap() -> Option<usize> {
    std::env::var("UGPC_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
}

/// The harness name: executable file stem minus cargo's `-<hash>` suffix.
fn harness_stem() -> String {
    let stem = std::env::args()
        .next()
        .as_deref()
        .map(std::path::Path::new)
        .and_then(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .unwrap_or_else(|| "bench".to_string());
    strip_cargo_hash(&stem).to_string()
}

/// Cargo names bench executables `<name>-<16 hex digits>`.
fn strip_cargo_hash(stem: &str) -> &str {
    match stem.rsplit_once('-') {
        Some((base, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            base
        }
        _ => stem,
    }
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

/// Write `BENCH_<harness>.json` into `$UGPC_BENCH_JSON` (no-op when the
/// variable is unset or nothing ran). Called by `criterion_main!` after
/// all groups finish.
pub fn write_json_report() {
    let Ok(dir) = std::env::var("UGPC_BENCH_JSON") else {
        return;
    };
    let records = std::mem::take(
        &mut *RESULTS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    );
    if records.is_empty() {
        return;
    }
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"bench\": \"{}\",\n",
        json_escape(&harness_stem())
    ));
    out.push_str("  \"results\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"group\": \"{}\", \"label\": \"{}\", \"samples\": {}, \"mean_ns\": {}, \"min_ns\": {}",
            json_escape(&r.group),
            json_escape(&r.label),
            r.samples,
            r.mean_ns,
            r.min_ns,
        ));
        if let Some(rate) = r.rate {
            out.push_str(&format!(", \"rate_per_s\": {rate}"));
        }
        out.push_str(if i + 1 < records.len() { "},\n" } else { "}\n" });
    }
    out.push_str("  ]\n}\n");
    let dir = std::path::PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("criterion shim: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("BENCH_{}.json", harness_stem()));
    match std::fs::write(&path, out) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("criterion shim: cannot write {}: {e}", path.display()),
    }
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: `function_id/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_id: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_id.into(), parameter),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

pub struct Bencher {
    samples: Vec<Duration>,
    max_samples: usize,
}

impl Bencher {
    /// Run `routine` repeatedly, recording one wall-clock sample per call,
    /// until the sample target or the time budget is reached.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let budget_start = Instant::now();
        // Warm-up call, not recorded.
        black_box(routine());
        while self.samples.len() < self.max_samples {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if budget_start.elapsed() > MEASURE_BUDGET {
                break;
            }
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            max_samples: self.effective_samples(),
        };
        f(&mut b);
        self.report(&id.label, &b.samples);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            max_samples: self.effective_samples(),
        };
        f(&mut b, input);
        self.report(&id.label, &b.samples);
        self
    }

    /// Requested sample size, clamped by the `UGPC_BENCH_SAMPLES` smoke cap.
    fn effective_samples(&self) -> usize {
        sample_cap().map_or(self.sample_size, |cap| self.sample_size.min(cap))
    }

    pub fn finish(self) {}

    fn report(&mut self, label: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{label}: no samples", self.name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let mut line = format!(
            "{}/{label}: mean {mean:?}, min {min:?} ({} samples)",
            self.name,
            samples.len(),
        );
        let mut rate = None;
        if let Some(tp) = self.throughput {
            let (count, unit) = match tp {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            let r = count as f64 / mean.as_secs_f64();
            line.push_str(&format!(", {r:.3e} {unit}"));
            rate = Some(r);
        }
        println!("{line}");
        RESULTS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(BenchRecord {
                group: self.name.clone(),
                label: label.to_string(),
                samples: samples.len(),
                mean_ns: mean.as_nanos(),
                min_ns: min.as_nanos(),
                rate,
            });
        self.criterion.benchmarks_run += 1;
    }
}

#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
            sample_size: 20,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(id);
        group.bench_function("base", f);
        group.finish();
        self
    }

    /// Hook for `criterion_main!` to degrade to a no-op compile check when
    /// the harness is invoked by `cargo test --benches`.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` runs each harness with `--test`; a
            // compile-and-launch check is all that's wanted there.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
            $crate::write_json_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.throughput(Throughput::Elements(100));
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        // Warm-up + at least one sample.
        assert!(runs >= 2);
        assert_eq!(c.benchmarks_run, 2);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("gemm", 64).label, "gemm/64");
        assert_eq!(BenchmarkId::from_parameter("dmdas").label, "dmdas");
    }

    #[test]
    fn cargo_hash_suffix_is_stripped() {
        assert_eq!(
            strip_cargo_hash("fig1_cap_sweep-0123456789abcdef"),
            "fig1_cap_sweep"
        );
        // Not a hash: wrong length or non-hex.
        assert_eq!(strip_cargo_hash("fig1-cap"), "fig1-cap");
        assert_eq!(strip_cargo_hash("a-0123456789abcdeg"), "a-0123456789abcdeg");
        assert_eq!(strip_cargo_hash("plain"), "plain");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
        assert_eq!(json_escape("plain"), "plain");
    }
}
