//! Offline shim for `criterion` (see `shims/README.md`).
//!
//! Provides the harness subset the `ugpc-bench` targets use:
//! `Criterion::benchmark_group`, `BenchmarkGroup::{throughput,
//! sample_size, bench_function, bench_with_input, finish}`,
//! `Bencher::iter`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!`/`criterion_main!` macros. Instead of criterion's
//! statistical engine it takes a handful of wall-clock samples per
//! benchmark and prints mean/min (plus element throughput when set) —
//! enough to compare paper configurations, not for micro-variance work.
//! Respects `--bench`/`--test` CLI noise that `cargo bench` passes.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock spent measuring each benchmark.
const MEASURE_BUDGET: Duration = Duration::from_millis(300);

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: `function_id/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_id: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_id.into(), parameter),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

pub struct Bencher {
    samples: Vec<Duration>,
    max_samples: usize,
}

impl Bencher {
    /// Run `routine` repeatedly, recording one wall-clock sample per call,
    /// until the sample target or the time budget is reached.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let budget_start = Instant::now();
        // Warm-up call, not recorded.
        black_box(routine());
        while self.samples.len() < self.max_samples {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if budget_start.elapsed() > MEASURE_BUDGET {
                break;
            }
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            max_samples: self.sample_size,
        };
        f(&mut b);
        self.report(&id.label, &b.samples);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            max_samples: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id.label, &b.samples);
        self
    }

    pub fn finish(self) {}

    fn report(&mut self, label: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{label}: no samples", self.name);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let mut line = format!(
            "{}/{label}: mean {mean:?}, min {min:?} ({} samples)",
            self.name,
            samples.len(),
        );
        if let Some(tp) = self.throughput {
            let (count, unit) = match tp {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            let rate = count as f64 / mean.as_secs_f64();
            line.push_str(&format!(", {rate:.3e} {unit}"));
        }
        println!("{line}");
        self.criterion.benchmarks_run += 1;
    }
}

#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
            sample_size: 20,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(id);
        group.bench_function("base", f);
        group.finish();
        self
    }

    /// Hook for `criterion_main!` to degrade to a no-op compile check when
    /// the harness is invoked by `cargo test --benches`.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` runs each harness with `--test`; a
            // compile-and-launch check is all that's wanted there.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        group.throughput(Throughput::Elements(100));
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        // Warm-up + at least one sample.
        assert!(runs >= 2);
        assert_eq!(c.benchmarks_run, 2);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("gemm", 64).label, "gemm/64");
        assert_eq!(BenchmarkId::from_parameter("dmdas").label, "dmdas");
    }
}
