//! Offline shim for the `rand` crate (see `shims/README.md`).
//!
//! Implements the subset this workspace uses: `rngs::SmallRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over half-open
//! float and integer ranges. The generator is xoshiro256** seeded via
//! splitmix64 — deterministic across platforms, which is all the callers
//! (seeded reproducible matrices, the `random` scheduler) rely on.

use std::ops::Range;

/// Core entropy source.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, as in real rand 0.8.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniform `bool`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Map a u64 to [0, 1) with 53 bits of precision.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as f32
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is ≤ span/2^64 — irrelevant for the small
                // spans this workspace samples.
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 stream to fill the state, like rand does.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn float_range_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for _ in 0..10_000 {
            let v = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        // Spread sanity: covers most of the interval.
        assert!(lo < -0.9 && hi > 0.9);
    }

    #[test]
    fn int_range_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0usize..6);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..100 {
            let v: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }
}
