//! Offline shim for `crossbeam` (see `shims/README.md`): the
//! `deque::{Injector, Worker, Stealer, Steal}` and `utils::Backoff`
//! surface used by the native executor. Backed by mutex-protected
//! `VecDeque`s rather than lock-free Chase-Lev deques — semantically
//! identical (FIFO local queue, stealable from the front), slower under
//! contention, which the executor's benchmarks tolerate.

pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// A global FIFO injection queue.
    pub struct Injector<T> {
        q: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        pub fn new() -> Self {
            Injector {
                q: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, task: T) {
            self.q
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push_back(task);
        }

        pub fn is_empty(&self) -> bool {
            self.q
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .is_empty()
        }

        /// Move a batch into `dest`'s local queue and pop one element.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut q = self
                .q
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let Some(first) = q.pop_front() else {
                return Steal::Empty;
            };
            // Take up to half of what remains along with the popped item.
            let extra = q.len().div_ceil(2).min(16);
            if extra > 0 {
                let mut dest_q = dest
                    .q
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                for _ in 0..extra {
                    if let Some(t) = q.pop_front() {
                        dest_q.push_back(t);
                    }
                }
            }
            Steal::Success(first)
        }
    }

    /// A worker's local FIFO queue.
    pub struct Worker<T> {
        pub(crate) q: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        pub fn new_fifo() -> Self {
            Worker {
                q: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        pub fn push(&self, task: T) {
            self.q
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push_back(task);
        }

        pub fn pop(&self) -> Option<T> {
            self.q
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .pop_front()
        }

        pub fn is_empty(&self) -> bool {
            self.q
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .is_empty()
        }

        pub fn stealer(&self) -> Stealer<T> {
            Stealer { q: self.q.clone() }
        }
    }

    /// A handle for stealing from another worker's queue.
    pub struct Stealer<T> {
        q: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer { q: self.q.clone() }
        }
    }

    impl<T> Stealer<T> {
        pub fn steal(&self) -> Steal<T> {
            match self
                .q
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .pop_front()
            {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        Empty,
        Success(T),
        Retry,
    }

    impl<T> Steal<T> {
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        pub fn is_retry(&self) -> bool {
            matches!(self, Steal::Retry)
        }

        pub fn is_success(&self) -> bool {
            matches!(self, Steal::Success(_))
        }

        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(t) => Some(t),
                _ => None,
            }
        }

        pub fn or_else<F: FnOnce() -> Steal<T>>(self, f: F) -> Steal<T> {
            match self {
                Steal::Success(t) => Steal::Success(t),
                Steal::Retry => match f() {
                    Steal::Empty => Steal::Retry,
                    other => other,
                },
                Steal::Empty => f(),
            }
        }
    }

    /// First success wins; any retry (without a success) yields `Retry`.
    impl<T> FromIterator<Steal<T>> for Steal<T> {
        fn from_iter<I: IntoIterator<Item = Steal<T>>>(iter: I) -> Steal<T> {
            let mut retry = false;
            for s in iter {
                match s {
                    Steal::Success(t) => return Steal::Success(t),
                    Steal::Retry => retry = true,
                    Steal::Empty => {}
                }
            }
            if retry {
                Steal::Retry
            } else {
                Steal::Empty
            }
        }
    }
}

pub mod utils {
    use std::cell::Cell;

    /// Exponential backoff for spin loops.
    pub struct Backoff {
        step: Cell<u32>,
    }

    impl Default for Backoff {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Backoff {
        pub fn new() -> Self {
            Backoff { step: Cell::new(0) }
        }

        pub fn reset(&self) {
            self.step.set(0);
        }

        pub fn spin(&self) {
            for _ in 0..(1 << self.step.get().min(6)) {
                std::hint::spin_loop();
            }
            self.step.set(self.step.get() + 1);
        }

        pub fn snooze(&self) {
            if self.step.get() < 4 {
                self.spin();
            } else {
                std::thread::yield_now();
                self.step.set(self.step.get() + 1);
            }
        }

        pub fn is_completed(&self) -> bool {
            self.step.get() > 10
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::*;

    #[test]
    fn injector_feeds_worker() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_fifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        // A batch landed locally.
        assert!(!w.is_empty());
        let mut drained = Vec::new();
        while let Some(t) = w.pop() {
            drained.push(t);
        }
        // FIFO order preserved.
        for pair in drained.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn stealer_takes_from_worker() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        let s = w.stealer();
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::<i32>::Empty);
    }

    #[test]
    fn steal_collect_prefers_success() {
        let all: Steal<i32> = [Steal::Empty, Steal::Retry, Steal::Success(7)]
            .into_iter()
            .collect();
        assert_eq!(all, Steal::Success(7));
        let retry: Steal<i32> = [Steal::Empty, Steal::Retry].into_iter().collect();
        assert!(retry.is_retry());
        let empty: Steal<i32> = [Steal::<i32>::Empty].into_iter().collect();
        assert!(empty.is_empty());
    }
}
