//! Offline shim for `serde_derive`: implements `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` against the serde shim's JSON value model.
//!
//! Hand-rolled over `proc_macro` (the container has no `syn`/`quote`):
//! a small token walker extracts the item shape — struct with named
//! fields, tuple/newtype struct, or enum with unit/tuple/struct variants,
//! optionally with plain `<T, U>` type parameters — and the impls are
//! generated as strings and re-parsed. Unsupported shapes (bounded
//! generics, lifetimes, unions) produce a `compile_error!`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    /// Named fields, in declaration order.
    Named(Vec<String>),
    /// Tuple fields (count only).
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct { fields: Fields },
    Enum { variants: Vec<Variant> },
}

#[derive(Debug)]
struct Parsed {
    name: String,
    generics: Vec<String>,
    item: Item,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error tokens")
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(p) => gen_serialize(&p)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde shim codegen: {e}"))),
        Err(e) => compile_error(&e),
    }
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(p) => gen_deserialize(&p)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde shim codegen: {e}"))),
        Err(e) => compile_error(&e),
    }
}

// ---------------------------------------------------------------------
// Parsing

fn parse_item(input: TokenStream) -> Result<Parsed, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => "struct",
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => "enum",
        other => return Err(format!("expected struct or enum, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    i += 1;

    let generics = parse_generics(&tokens, &mut i)?;

    if kind == "struct" {
        match tokens.get(i) {
            // Named-field struct.
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Parsed {
                name,
                generics,
                item: Item::Struct {
                    fields: Fields::Named(parse_named_fields(g.stream())?),
                },
            }),
            // Tuple struct (`struct X(A, B);`).
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Parsed {
                name,
                generics,
                item: Item::Struct {
                    fields: Fields::Tuple(count_tuple_fields(g.stream())),
                },
            }),
            // Unit struct.
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Parsed {
                name,
                generics,
                item: Item::Struct {
                    fields: Fields::Unit,
                },
            }),
            other => Err(format!("unsupported struct body: {other:?}")),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Parsed {
                name,
                generics,
                item: Item::Enum {
                    variants: parse_variants(g.stream())?,
                },
            }),
            other => Err(format!("expected enum body, found {other:?}")),
        }
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            // `#[...]`
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1;
                }
            }
            // `pub`, optionally `pub(crate)` etc.
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(
                    tokens.get(*i),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parse `<T, U>`-style generics (plain type-parameter idents only).
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Result<Vec<String>, String> {
    let mut params = Vec::new();
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => *i += 1,
        _ => return Ok(params),
    }
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                *i += 1;
                return Ok(params);
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => *i += 1,
            Some(TokenTree::Ident(id)) => {
                params.push(id.to_string());
                *i += 1;
                // A bound (`T: Trait`) or default would need real serde.
                if let Some(TokenTree::Punct(p)) = tokens.get(*i) {
                    if p.as_char() == ':' || p.as_char() == '=' {
                        return Err(format!(
                            "serde shim: bounded/defaulted type parameter {} unsupported",
                            params.last().map(String::as_str).unwrap_or("?")
                        ));
                    }
                }
            }
            other => return Err(format!("serde shim: unsupported generics token {other:?}")),
        }
    }
}

/// Names of the fields of a `{ ... }` body, skipping types entirely.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            return Err(format!("expected field name, found {:?}", tokens.get(i)));
        };
        names.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected ':' after field, found {other:?}")),
        }
        // Skip the type: everything until a comma outside angle brackets.
        let mut angle = 0i32;
        while let Some(t) = tokens.get(i) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // past the comma (or the end)
    }
    Ok(names)
}

/// Count the fields of a `( ... )` body (top-level commas outside angles).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    for (idx, t) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                // Ignore a trailing comma.
                ',' if angle == 0 && idx + 1 < tokens.len() => count += 1,
                _ => {}
            }
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            return Err(format!("expected variant name, found {:?}", tokens.get(i)));
        };
        let name = id.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream())?);
                i += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                f
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`).
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == '=' {
                i += 1;
                while let Some(t) = tokens.get(i) {
                    if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                    i += 1;
                }
            }
        }
        // Past the trailing comma.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------
// Codegen

fn impl_header(p: &Parsed, trait_name: &str) -> String {
    if p.generics.is_empty() {
        format!("impl ::serde::{trait_name} for {}", p.name)
    } else {
        let bounded: Vec<String> = p
            .generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect();
        format!(
            "impl<{}> ::serde::{trait_name} for {}<{}>",
            bounded.join(", "),
            p.name,
            p.generics.join(", ")
        )
    }
}

fn gen_serialize(p: &Parsed) -> String {
    let body = match &p.item {
        Item::Struct { fields } => match fields {
            Fields::Named(names) => {
                let entries: Vec<String> = names
                    .iter()
                    .map(|n| {
                        format!("({n:?}.to_string(), ::serde::Serialize::to_value(&self.{n}))")
                    })
                    .collect();
                format!("::serde::json::Value::Object(vec![{}])", entries.join(", "))
            }
            Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!("::serde::json::Value::Array(vec![{}])", items.join(", "))
            }
            Fields::Unit => "::serde::json::Value::Null".to_string(),
        },
        Item::Enum { variants } => {
            let ty = &p.name;
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{ty}::{vn} => ::serde::json::Value::Str({vn:?}.to_string()),"
                        ),
                        Fields::Tuple(1) => format!(
                            "{ty}::{vn}(f0) => ::serde::json::Value::Object(vec![({vn:?}.to_string(), ::serde::Serialize::to_value(f0))]),"
                        ),
                        Fields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{ty}::{vn}({b}) => ::serde::json::Value::Object(vec![({vn:?}.to_string(), ::serde::json::Value::Array(vec![{it}]))]),",
                                b = binds.join(", "),
                                it = items.join(", ")
                            )
                        }
                        Fields::Named(names) => {
                            let binds = names.join(", ");
                            let entries: Vec<String> = names
                                .iter()
                                .map(|n| {
                                    format!("({n:?}.to_string(), ::serde::Serialize::to_value({n}))")
                                })
                                .collect();
                            format!(
                                "{ty}::{vn} {{ {binds} }} => ::serde::json::Value::Object(vec![({vn:?}.to_string(), ::serde::json::Value::Object(vec![{e}]))]),",
                                e = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "#[automatically_derived]\n{} {{\n fn to_value(&self) -> ::serde::json::Value {{ {body} }}\n}}",
        impl_header(p, "Serialize")
    )
}

fn named_fields_ctor(ty_path: &str, names: &[String], src: &str) -> String {
    let fields: Vec<String> = names
        .iter()
        .map(|n| {
            format!(
                "{n}: ::serde::Deserialize::from_value({src}.get({n:?}).unwrap_or(&::serde::json::Value::Null)).map_err(|e| ::serde::json::Error::msg(format!(\"{ty_path}.{n}: {{e}}\")))?"
            )
        })
        .collect();
    format!("{ty_path} {{ {} }}", fields.join(", "))
}

fn gen_deserialize(p: &Parsed) -> String {
    let ty = &p.name;
    let body = match &p.item {
        Item::Struct { fields } => match fields {
            Fields::Named(names) => format!("Ok({})", named_fields_ctor(ty, names, "v")),
            Fields::Tuple(1) => {
                format!("Ok({ty}(::serde::Deserialize::from_value(v)?))")
            }
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                format!(
                    "let items = v.as_array().ok_or_else(|| ::serde::json::Error::msg(\"{ty}: expected array\"))?;\n\
                     if items.len() != {n} {{ return Err(::serde::json::Error::msg(\"{ty}: wrong tuple arity\")); }}\n\
                     Ok({ty}({}))",
                    items.join(", ")
                )
            }
            Fields::Unit => format!("Ok({ty})"),
        },
        Item::Enum { variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| format!("{:?} => return Ok({ty}::{}),", v.name, v.name))
                .collect();
            let content_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => None,
                        Fields::Tuple(1) => Some(format!(
                            "{vn:?} => return Ok({ty}::{vn}(::serde::Deserialize::from_value(content)?)),"
                        )),
                        Fields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            Some(format!(
                                "{vn:?} => {{\n\
                                   let items = content.as_array().ok_or_else(|| ::serde::json::Error::msg(\"{ty}::{vn}: expected array\"))?;\n\
                                   if items.len() != {n} {{ return Err(::serde::json::Error::msg(\"{ty}::{vn}: wrong arity\")); }}\n\
                                   return Ok({ty}::{vn}({}));\n\
                                 }}",
                                items.join(", ")
                            ))
                        }
                        Fields::Named(names) => Some(format!(
                            "{vn:?} => return Ok({}),",
                            named_fields_ctor(&format!("{ty}::{vn}"), names, "content")
                        )),
                    }
                })
                .collect();
            format!(
                "if let Some(s) = v.as_str() {{\n\
                   match s {{ {unit} _ => {{}} }}\n\
                 }}\n\
                 if let Some(fields) = v.as_object() {{\n\
                   if fields.len() == 1 {{\n\
                     let (key, content) = &fields[0];\n\
                     let _ = content;\n\
                     match key.as_str() {{ {content} _ => {{}} }}\n\
                   }}\n\
                 }}\n\
                 Err(::serde::json::Error::msg(format!(\"unknown {ty} variant: {{v}}\")))",
                unit = unit_arms.join("\n"),
                content = content_arms.join("\n")
            )
        }
    };
    format!(
        "#[automatically_derived]\n{} {{\n fn from_value(v: &::serde::json::Value) -> ::std::result::Result<Self, ::serde::json::Error> {{ {body} }}\n}}",
        impl_header(p, "Deserialize")
    )
}
