//! Offline shim for the `serde` crate.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors a minimal, API-compatible subset of the external
//! crates it uses (see `shims/README.md`). This shim keeps the exact
//! import surface the workspace relies on — `use serde::{Deserialize,
//! Serialize}`, `#[derive(Serialize, Deserialize)]`, and `T:
//! serde::Serialize` bounds — but is implemented directly over a JSON
//! value model instead of serde's visitor architecture. Swapping back to
//! the real crate is a one-line change in the workspace manifest.

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

use json::{Error, Value};

/// Conversion into the JSON value model (shim counterpart of
/// `serde::Serialize`).
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion out of the JSON value model (shim counterpart of
/// `serde::Deserialize`).
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) if n.fract() == 0.0 => Ok(*n as $t),
                    _ => Err(Error::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    _ => Err(Error::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => {
                let mut it = s.chars();
                match (it.next(), it.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(Error::msg("expected single-char string")),
                }
            }
            _ => Err(Error::msg("expected char")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == impl_tuple!(@count $($t)+) => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(Error::msg("expected tuple array")),
                }
            }
        }
    )*};
    (@count $($t:ident)+) => { [$(impl_tuple!(@one $t)),+].len() };
    (@one $t:ident) => { () };
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.as_ref().to_owned(), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1usize, 2.0f64), (3, 4.0)];
        assert_eq!(Vec::<(usize, f64)>::from_value(&v.to_value()), Ok(v));
        let o: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&o.to_value()), Ok(None));
        assert_eq!(
            Option::<u32>::from_value(&Some(7u32).to_value()),
            Ok(Some(7))
        );
    }

    #[test]
    fn non_integral_int_rejected() {
        assert!(u32::from_value(&Value::Num(1.5)).is_err());
        assert!(u32::from_value(&Value::Str("1".into())).is_err());
    }
}
