//! The JSON value model backing the serde/serde_json shims: a tree value,
//! a writer (compact and pretty), and a recursive-descent parser.

use std::fmt;

/// A parsed or buildable JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All numbers are f64, like JavaScript; integral values print without
    /// a decimal point so integers round-trip textually up to 2^53.
    Num(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered, like `serde_json`'s `preserve_order` feature.
    Object(Vec<(String, Value)>),
}

/// Serialization / deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    pub fn msg(m: impl Into<String>) -> Self {
        Error { message: m.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for Error {}

static NULL: Value = Value::Null;

impl Value {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Num(n) => write_number(out, *n),
            Value::Str(s) => write_string(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, level);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                if !fields.is_empty() {
                    newline_indent(out, indent, level);
                }
                out.push('}');
            }
        }
    }

    /// Compact rendering.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        s
    }

    /// Two-space-indented rendering.
    pub fn to_json_pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, Some(2), 0);
        s
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    use fmt::Write as _;
    if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{:?}` is Rust's shortest round-trip float formatting.
        let _ = write!(out, "{n:?}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::Str(s) if s == other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::Str(s) if s == other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

/// Parse a complete JSON document.
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected {:?} at byte {}",
                b as char,
                self.pos.saturating_sub(1)
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(Error::msg("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(fields)),
                _ => return Err(Error::msg("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = self.hex4()?;
                        // Surrogate pairs: a leading surrogate must be
                        // followed by `\uXXXX` with a trailing surrogate.
                        let c = if (0xD800..0xDC00).contains(&code) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(Error::msg("invalid surrogate pair"));
                            }
                            let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(c)
                        } else {
                            char::from_u32(code)
                        };
                        out.push(c.ok_or_else(|| Error::msg("invalid \\u escape"))?);
                    }
                    _ => return Err(Error::msg("invalid escape")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + len).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::msg("invalid utf-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| Error::msg("truncated \\u"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::msg("bad hex digit"))?;
            code = code * 16 + d;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::msg(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_document() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("x\"y\\z\n".into())),
            ("n".into(), Value::Num(42.0)),
            ("pi".into(), Value::Num(3.25)),
            (
                "items".into(),
                Value::Array(vec![Value::Bool(true), Value::Null, Value::Num(-1.5e-3)]),
            ),
            ("empty".into(), Value::Object(vec![])),
        ]);
        let compact = v.to_json();
        assert_eq!(parse(&compact).unwrap(), v);
        let pretty = v.to_json_pretty();
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn integers_print_without_decimal() {
        assert_eq!(Value::Num(42.0).to_json(), "42");
        assert_eq!(Value::Num(-3.0).to_json(), "-3");
        assert_eq!(Value::Num(0.5).to_json(), "0.5");
    }

    #[test]
    fn indexing_and_comparisons() {
        let v = parse(r#"{"ph":"X","args":{"n":7},"xs":[1,2]}"#).unwrap();
        assert!(v["ph"] == "X");
        assert_eq!(v["args"]["n"].as_f64(), Some(7.0));
        assert_eq!(v["xs"][1].as_u64(), Some(2));
        assert!(v["missing"].is_null());
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""aéb😀c""#).unwrap();
        assert_eq!(v, Value::Str("aéb\u{1F600}c".into()));
        let raw = parse("\"héllo\"").unwrap();
        assert_eq!(raw, Value::Str("héllo".into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("nul").is_err());
    }
}
